//! [`FaultyMemory`] — deterministic, seeded value-fault injection over
//! any [`MemStore`].
//!
//! The paper's noise lives in the *schedule* (when operations happen);
//! related work puts it in the *values* instead: Fraigniaud–Natale's
//! noisy-communication model flips each transmitted bit with
//! probability ε, and Clementi et al. show such noise can make
//! consensus strictly easier. `FaultyMemory` is the instrument for
//! measuring where lean-consensus sits on that axis: a composable
//! wrapper that perturbs the **values** protocols observe while the
//! engine's schedule stays untouched, so every run remains a pure
//! function of its seed.
//!
//! Three fault families, all configured by a [`FaultSpec`]:
//!
//! * **stuck-at registers** — a chosen set of addresses reads as a
//!   fixed bit regardless of what was written (and absorbs writes), the
//!   classic stuck-at-zero/one hardware fault;
//! * **write drops** — each write is silently discarded with
//!   probability δ (a lossy store port / omitted message);
//! * **read bit-flips** — each read's low bit is flipped with
//!   probability ε (Fraigniaud–Natale's binary noisy channel; the
//!   racing arrays store bits, so flipping bit 0 is exactly their
//!   model).
//!
//! Determinism: faults draw from a private stream derived from the
//! trial seed via [`MemStore::reseed`] (the engine calls it once per
//! trial, after setup writes like sentinels — initial state is never
//! faulted). Same seed ⇒ byte-identical fault decisions, at any thread
//! count or lane width. Before `reseed` arms it — and always with an
//! empty spec — the wrapper is a transparent pass-through, pinned
//! observationally identical to its inner store by the engine's
//! equivalence suites.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::layout::Region;
use crate::store::MemStore;
use crate::types::{Addr, Bit, Word};

/// Salt folded into the trial seed for the fault stream, so it can
/// never collide with the engine's `(seed, pid, salt)` streams (which
/// use small salts and a different pre-mix).
const FAULT_STREAM_SALT: u64 = 0xFA_17_5E_ED_0B_AD_B1_75;

/// Salt for the seed handed down to a wrapped inner plane on
/// [`MemStore::reseed`], so stacked `FaultyMemory` layers derive
/// distinct, uncorrelated fault streams from one trial seed.
const NESTED_RESEED_SALT: u64 = 0x0DD5_7ACC_ED13_A7E5;

/// SplitMix64 finalizer (local copy: `nc-memory` sits below `nc-sched`
/// in the crate graph, so it cannot use `nc_sched::rng`).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Declarative description of the value faults to inject.
///
/// The default spec injects nothing; build one with the chained
/// setters:
///
/// ```
/// use nc_memory::{Addr, Bit, FaultSpec};
///
/// let spec = FaultSpec::new()
///     .read_flip(0.01)              // ε: flip each read's low bit
///     .write_drop(0.005)            // δ: silently drop writes
///     .stuck_at(Addr::new(4), Bit::Zero); // a stuck-at-zero register
/// assert!(spec.any());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability ε that a read's low bit is flipped.
    pub read_flip: f64,
    /// Probability δ that a write is silently dropped.
    pub write_drop: f64,
    /// Registers stuck at a fixed bit: reads of these addresses return
    /// the stuck value, writes to them are absorbed.
    pub stuck: Vec<(Addr, Bit)>,
}

impl FaultSpec {
    /// A spec injecting no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the read bit-flip rate ε (in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not a probability.
    pub fn read_flip(mut self, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "ε must be in [0, 1]");
        self.read_flip = epsilon;
        self
    }

    /// Sets the write-drop rate δ (in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not a probability.
    pub fn write_drop(mut self, delta: f64) -> Self {
        assert!((0.0..=1.0).contains(&delta), "δ must be in [0, 1]");
        self.write_drop = delta;
        self
    }

    /// Declares the register at `addr` stuck at `value`.
    pub fn stuck_at(mut self, addr: Addr, value: Bit) -> Self {
        self.stuck.push((addr, value));
        self
    }

    /// Whether this spec injects any fault at all.
    pub fn any(&self) -> bool {
        self.read_flip > 0.0 || self.write_drop > 0.0 || !self.stuck.is_empty()
    }
}

/// A [`MemStore`] wrapper injecting the deterministic value faults of a
/// [`FaultSpec`] into an inner store. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct FaultyMemory<M> {
    inner: M,
    spec: FaultSpec,
    rng: SmallRng,
    /// Armed by [`MemStore::reseed`]; disarmed by [`MemStore::reset`].
    /// While disarmed the wrapper is a transparent pass-through, so
    /// setup writes (sentinels, layout installation) are never faulted.
    armed: bool,
    ops_executed: u64,
    /// Writes dropped and reads flipped since the last reseed, for
    /// experiment diagnostics.
    faults_injected: u64,
}

impl<M: MemStore> FaultyMemory<M> {
    /// Wraps `inner` with the faults of `spec` (armed per trial by
    /// [`MemStore::reseed`]).
    pub fn new(inner: M, spec: FaultSpec) -> Self {
        FaultyMemory {
            inner,
            spec,
            rng: SmallRng::seed_from_u64(0),
            armed: false,
            ops_executed: 0,
            faults_injected: 0,
        }
    }

    /// Wraps `inner` with an empty spec — observationally the identity,
    /// used by differential tests.
    pub fn pass_through(inner: M) -> Self {
        Self::new(inner, FaultSpec::new())
    }

    /// The fault specification this wrapper applies.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The wrapped store.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Stochastic faults (dropped writes + flipped reads) injected
    /// since the last [`MemStore::reseed`]. Stuck-at masking is not
    /// counted (it is not an event — the register is simply broken).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// The stuck value for `addr`, if that register is stuck. Last
    /// declaration wins, matching the setter order.
    #[inline]
    fn stuck_value(&self, addr: Addr) -> Option<Word> {
        self.spec
            .stuck
            .iter()
            .rev()
            .find(|(a, _)| *a == addr)
            .map(|(_, b)| b.word())
    }
}

impl<M: MemStore> MemStore for FaultyMemory<M> {
    #[inline]
    fn read(&mut self, addr: Addr) -> Word {
        self.ops_executed += 1;
        if self.armed {
            // A stuck register is broken hardware: its fixed bit short-
            // circuits both the underlying cell and the ε channel noise
            // (symmetric with the write path, which absorbs the write
            // before the δ draw).
            if let Some(stuck) = self.stuck_value(addr) {
                return stuck;
            }
        }
        // Delegate to the inner *read* (not peek) so stacked fault
        // planes apply their own read faults.
        let mut v = self.inner.read(addr);
        // Drawing only when ε > 0 keeps the stream aligned with the
        // spec (deterministic either way: the draw sequence is a pure
        // function of the executed op sequence and the spec).
        if self.armed && self.spec.read_flip > 0.0 && self.rng.random::<f64>() < self.spec.read_flip
        {
            v ^= 1;
            self.faults_injected += 1;
        }
        v
    }

    #[inline]
    fn write(&mut self, addr: Addr, value: Word) {
        self.ops_executed += 1;
        if self.armed {
            if self.stuck_value(addr).is_some() {
                return; // a stuck register absorbs the write
            }
            if self.spec.write_drop > 0.0 && self.rng.random::<f64>() < self.spec.write_drop {
                self.faults_injected += 1;
                return;
            }
        }
        self.inner.write(addr, value);
    }

    fn alloc(&mut self, len: usize) -> Region {
        self.inner.alloc(len)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.armed = false;
        self.ops_executed = 0;
        self.faults_injected = 0;
    }

    fn reseed(&mut self, seed: u64) {
        // Arm any wrapped fault plane first, on a salted seed of its
        // own, so stacked wrappers inject independent streams (a no-op
        // for faithful inner stores).
        self.inner.reseed(splitmix64(seed ^ NESTED_RESEED_SALT));
        self.rng = SmallRng::seed_from_u64(splitmix64(seed ^ FAULT_STREAM_SALT));
        self.armed = true;
        self.faults_injected = 0;
    }

    fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    fn peek(&self, addr: Addr) -> Word {
        // The true stored value: peek is a diagnostic view, so neither
        // stuck masking nor flips apply.
        self.inner.peek(addr)
    }

    fn footprint_words(&self) -> usize {
        self.inner.footprint_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimMemory;
    use crate::types::Op;

    #[test]
    fn disarmed_wrapper_is_transparent() {
        let mut faulty = FaultyMemory::new(
            SimMemory::new(),
            FaultSpec::new().read_flip(1.0).write_drop(1.0),
        );
        let mut plain = SimMemory::new();
        for i in 0..20usize {
            faulty.write(Addr::new(i % 7), i as Word);
            plain.write(Addr::new(i % 7), i as Word);
            assert_eq!(faulty.read(Addr::new(i % 5)), plain.read(Addr::new(i % 5)));
        }
        assert_eq!(
            MemStore::ops_executed(&faulty),
            MemStore::ops_executed(&plain)
        );
        assert_eq!(faulty.faults_injected(), 0);
    }

    #[test]
    fn empty_spec_is_transparent_even_when_armed() {
        let mut faulty = FaultyMemory::pass_through(SimMemory::new());
        faulty.reseed(42);
        let mut plain = SimMemory::new();
        for i in 0..50usize {
            faulty.write(Addr::new(i), 1);
            plain.write(Addr::new(i), 1);
            assert_eq!(faulty.read(Addr::new(i / 2)), plain.read(Addr::new(i / 2)));
        }
        assert_eq!(faulty.faults_injected(), 0);
    }

    #[test]
    fn stuck_registers_mask_reads_and_absorb_writes() {
        let spec = FaultSpec::new()
            .stuck_at(Addr::new(1), Bit::One)
            .stuck_at(Addr::new(2), Bit::Zero);
        let mut mem = FaultyMemory::new(SimMemory::new(), spec);
        // Before arming, writes land normally.
        mem.write(Addr::new(2), 9);
        mem.reseed(7);
        assert_eq!(mem.read(Addr::new(1)), 1, "stuck-at-one reads 1");
        assert_eq!(mem.read(Addr::new(2)), 0, "stuck-at-zero masks the 9");
        assert_eq!(mem.peek(Addr::new(2)), 9, "peek sees the true word");
        mem.write(Addr::new(1), 0); // absorbed
        assert_eq!(mem.peek(Addr::new(1)), 0, "absorbed write never lands");
        assert_eq!(mem.read(Addr::new(1)), 1);
    }

    #[test]
    fn stuck_registers_ignore_channel_noise() {
        // A stuck register is broken hardware, not a noisy channel: the
        // ε flip must never apply to it (only to faithful registers).
        let spec = FaultSpec::new()
            .stuck_at(Addr::new(1), Bit::One)
            .read_flip(1.0);
        let mut mem = FaultyMemory::new(SimMemory::new(), spec);
        mem.reseed(3);
        for _ in 0..8 {
            assert_eq!(mem.read(Addr::new(1)), 1, "stuck bit must not flip");
        }
        assert_eq!(mem.read(Addr::new(0)), 1, "ε = 1 flips non-stuck reads");
    }

    #[test]
    fn stacked_wrappers_arm_and_inject_independently() {
        // Composition: the inner plane drops every write, the outer
        // flips every read — one reseed must arm both layers.
        let inner = FaultyMemory::new(SimMemory::new(), FaultSpec::new().write_drop(1.0));
        let mut mem = FaultyMemory::new(inner, FaultSpec::new().read_flip(1.0));
        mem.reseed(5);
        mem.write(Addr::new(0), 1); // dropped by the inner plane
        assert_eq!(mem.peek(Addr::new(0)), 0, "inner wrapper must be armed");
        assert_eq!(mem.read(Addr::new(0)), 1, "outer flip applies on top");
    }

    #[test]
    fn certain_write_drop_loses_every_write() {
        let mut mem = FaultyMemory::new(SimMemory::new(), FaultSpec::new().write_drop(1.0));
        mem.reseed(1);
        mem.write(Addr::new(0), 5);
        assert_eq!(mem.read(Addr::new(0)), 0);
        assert_eq!(
            MemStore::ops_executed(&mem),
            2,
            "dropped writes still count"
        );
        assert_eq!(mem.faults_injected(), 1);
    }

    #[test]
    fn certain_read_flip_inverts_the_low_bit() {
        let mut mem = FaultyMemory::new(SimMemory::new(), FaultSpec::new().read_flip(1.0));
        mem.reseed(1);
        mem.write(Addr::new(0), 1);
        assert_eq!(mem.read(Addr::new(0)), 0);
        assert_eq!(mem.read(Addr::new(3)), 1, "flipped zero reads as one");
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let run = |seed: u64| -> Vec<Word> {
            let mut mem = FaultyMemory::new(
                SimMemory::new(),
                FaultSpec::new().read_flip(0.3).write_drop(0.3),
            );
            mem.reseed(seed);
            let mut out = Vec::new();
            for i in 0..200usize {
                mem.write(Addr::new(i % 11), 1);
                out.push(mem.read(Addr::new(i % 13)));
            }
            out.push(mem.faults_injected());
            out
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "distinct seeds must vary the stream");
    }

    #[test]
    fn reset_disarms_and_clears_counters() {
        let mut mem = FaultyMemory::new(SimMemory::new(), FaultSpec::new().write_drop(1.0));
        mem.reseed(3);
        mem.write(Addr::new(0), 5); // dropped
        assert_eq!(mem.faults_injected(), 1);
        MemStore::reset(&mut mem);
        assert_eq!(mem.faults_injected(), 0);
        assert_eq!(MemStore::ops_executed(&mem), 0);
        mem.write(Addr::new(0), 5); // disarmed: lands
        assert_eq!(mem.exec(Op::Read(Addr::new(0))), Some(5));
    }

    #[test]
    fn spec_helpers() {
        assert!(!FaultSpec::new().any());
        assert!(FaultSpec::new().read_flip(0.1).any());
        assert!(FaultSpec::new().write_drop(0.1).any());
        assert!(FaultSpec::new().stuck_at(Addr::new(0), Bit::Zero).any());
        let mem = FaultyMemory::new(SimMemory::new(), FaultSpec::new().read_flip(0.5));
        assert_eq!(mem.spec().read_flip, 0.5);
        assert_eq!(mem.inner().footprint_words(), 0);
    }

    #[test]
    #[should_panic(expected = "ε must be in [0, 1]")]
    fn out_of_range_epsilon_panics() {
        let _ = FaultSpec::new().read_flip(1.5);
    }
}
