//! The pluggable word-store interface: [`MemStore`].
//!
//! The paper's model is "arrays of atomic read/write bits" accessed
//! through an interleaving schedule. Everything above this crate —
//! protocol step machines, the discrete-event drivers, the `Sim`
//! builder — talks to that memory through `MemStore`, so the *plane*
//! the words live on is swappable:
//!
//! | Backend | Module | Plane |
//! |---------|--------|-------|
//! | [`crate::SimMemory`] | [`crate::sim`] | growable flat array, lazy zeroing (the default) |
//! | [`crate::DenseRaceMemory`] | [`crate::dense`] | preallocated dense array specialized to [`crate::RaceLayout`]'s fixed per-round stride |
//! | [`crate::FaultyMemory<M>`] | [`crate::faulty`] | any backend, wrapped with deterministic seeded value faults |
//!
//! Drivers are **generic** (monomorphized) over `M: MemStore`, never
//! `dyn`, so the per-event read/write on the engine's hot path compiles
//! down to the backend's concrete code. With faults disabled, every
//! backend is observationally identical: same reads, same operation
//! counts, bit-for-bit identical run reports (pinned by the engine's
//! equivalence suites).

use std::fmt;

use crate::layout::Region;
use crate::types::{Addr, Op, Word};

/// A direct mutable window onto a dense, faithful word plane — the
/// compile-time-specialized fast lane for [`crate::RaceLayout`]-strided
/// access (see [`MemStore::race_plane`]).
///
/// # Contract for callers
///
/// The view bypasses [`MemStore::read`]/[`MemStore::write`], so the
/// caller must leave the store indistinguishable from having made the
/// equivalent per-op calls:
///
/// * only touch indices `< words.len()` (no growth through the plane);
/// * bump `*ops` by one per logical read or write performed;
/// * after writing index `i`, ensure `*hi ≥ i + 1` (the footprint
///   high-water mark);
/// * store exactly the words the per-op path would have stored.
#[derive(Debug)]
pub struct RacePlane<'a> {
    /// The backing words, zero-initialised beyond the high-water mark.
    pub words: &'a mut [Word],
    /// The store's footprint high-water mark (max written index + 1).
    pub hi: &'a mut usize,
    /// The store's [`MemStore::ops_executed`] counter.
    pub ops: &'a mut u64,
}

/// A flat, conceptually unbounded, zero-initialised space of atomic
/// read/write registers under interleaving semantics.
///
/// # Contract
///
/// * Reads of never-written addresses return `0` (the paper's arrays
///   are "initialized to zero").
/// * [`MemStore::read`] / [`MemStore::write`] / [`MemStore::exec`] each
///   count one operation toward [`MemStore::ops_executed`];
///   [`MemStore::peek`] does not.
/// * [`MemStore::alloc`] hands out disjoint [`Region`]s (a bump
///   allocator over the address space).
/// * [`MemStore::reset`] returns the store to its pristine observable
///   state — all registers read `0`, no regions allocated, operation
///   counter cleared, fault injection (if any) disarmed — while keeping
///   backing allocations for reuse. The shipped implementations do this
///   by `fill(0)`-ing the used storage **in place** (keeping the
///   vector's length), which measures ~2x faster than the
///   clear-then-regrow alternative on trial-sweep workloads (see
///   `BENCH_engine.json`'s `reset_fill_vs_clear` record); consequently
///   [`MemStore::footprint_words`] is a high-water mark that persists
///   across resets.
/// * Faithful stores return exactly the last value written to each
///   address. Fault-injecting stores ([`crate::FaultyMemory`]) may
///   deviate *deterministically* after [`MemStore::reseed`] arms them —
///   but with faults disarmed every implementation must be
///   observationally identical to [`crate::SimMemory`].
///
/// The supertraits are what the engine's sweep layer needs: `Clone` to
/// stamp per-worker stores from one prototype, `Send + Sync` to share
/// that prototype across scoped worker threads.
pub trait MemStore: fmt::Debug + Clone + Send + Sync {
    /// Atomically reads the register at `addr`, counting one operation.
    fn read(&mut self, addr: Addr) -> Word;

    /// Atomically writes `value` to the register at `addr`, counting
    /// one operation.
    fn write(&mut self, addr: Addr, value: Word);

    /// Executes one operation under interleaving semantics, returning
    /// the value read (for reads) or `None` (for writes).
    #[inline]
    fn exec(&mut self, op: Op) -> Option<Word> {
        match op {
            Op::Read(addr) => Some(self.read(addr)),
            Op::Write(addr, value) => {
                self.write(addr, value);
                None
            }
        }
    }

    /// Reserves a fresh region of `len` registers, disjoint from every
    /// region handed out since the last [`MemStore::reset`].
    fn alloc(&mut self, len: usize) -> Region;

    /// Returns the store to its pristine observable state (see the
    /// trait-level contract), keeping backing allocations.
    fn reset(&mut self);

    /// Re-derives any internal stochastic streams (fault injection)
    /// from `seed` and arms them for the coming run. A no-op for
    /// faithful stores.
    ///
    /// Drivers call this once per trial, *after* instance setup
    /// (layouts installed, sentinels written) and before the first
    /// protocol operation, so initial state is never faulted and the
    /// fault stream is a pure function of the trial seed.
    #[inline]
    fn reseed(&mut self, seed: u64) {
        let _ = seed;
    }

    /// Total operations executed since the last [`MemStore::reset`]
    /// (reads + writes, including dropped faulty writes).
    fn ops_executed(&self) -> u64;

    /// The current value at `addr` **without** counting an operation
    /// and **without** fault injection — the true stored word, for
    /// assertions and metrics only.
    fn peek(&self, addr: Addr) -> Word;

    /// Number of registers with backing storage — the high-water mark
    /// of the space the executions actually consumed (persists across
    /// [`MemStore::reset`], by the in-place-zeroing contract).
    fn footprint_words(&self) -> usize;

    /// A direct window onto the store's dense backing words, if the
    /// store is a faithful preallocated array ([`crate::DenseRaceMemory`]).
    ///
    /// The engine's batched executor uses this to turn a micro-batch of
    /// protocol operations into straight-line indexed loads/stores —
    /// provided every address in the batch falls inside
    /// `words.len()` — instead of K dispatched `read`/`write` calls.
    /// Stores that inject faults, grow lazily, or otherwise do work per
    /// operation must return `None` (the default) so every operation
    /// keeps flowing through [`MemStore::read`]/[`MemStore::write`];
    /// see [`RacePlane`] for the caller-side contract.
    #[inline]
    fn race_plane(&mut self) -> Option<RacePlane<'_>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseRaceMemory, FaultyMemory, SimMemory};

    fn exercise<M: MemStore>(mut mem: M) {
        assert_eq!(mem.read(Addr::new(1000)), 0);
        mem.write(Addr::new(3), 7);
        assert_eq!(mem.exec(Op::Read(Addr::new(3))), Some(7));
        assert_eq!(mem.exec(Op::Write(Addr::new(3), 9)), None);
        assert_eq!(mem.read(Addr::new(3)), 9);
        assert_eq!(mem.peek(Addr::new(3)), 9);
        assert_eq!(mem.ops_executed(), 5);
        let r1 = mem.alloc(4);
        let r2 = mem.alloc(4);
        assert_eq!(r1.base().plus(4), r2.base());
        mem.reset();
        assert_eq!(mem.ops_executed(), 0);
        assert_eq!(mem.read(Addr::new(3)), 0);
        assert_eq!(mem.alloc(4).base(), r1.base());
    }

    #[test]
    fn every_backend_satisfies_the_generic_contract() {
        exercise(SimMemory::new());
        exercise(DenseRaceMemory::new());
        exercise(FaultyMemory::pass_through(SimMemory::new()));
        exercise(FaultyMemory::pass_through(DenseRaceMemory::new()));
    }
}
