//! Builder-vs-internals pinning suite: every configuration expressible
//! through the [`nc_engine::sim::Sim`] builder must produce **byte
//! identical** [`nc_engine::RunReport`]s (exact `f64` equality
//! included) to a direct call into the drive internal it wraps
//! ([`drive_noisy`], [`drive_adversarial`], [`drive_hybrid`]), across
//! the matrix algorithms × failure models × queue policies × lane
//! widths × history recording — plus the adversarial and hybrid
//! schedules and the crash-adversary hooks.
//!
//! Together with `tests/soa_equivalence.rs` (internals vs the naive
//! oracle, `--features baseline`) this closes the chain
//! `baseline == drive internals == builder`, so neither the API
//! cutover nor the deletion of the deprecated `run_*` wrappers can
//! move a single golden CSV.

use nc_engine::adversarial::drive_adversarial;
use nc_engine::hybrid::drive_hybrid;
use nc_engine::noisy::drive_noisy;
use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, EngineScratch, Limits, QueuePolicy, RunReport};
use nc_sched::adversary::{
    Adversary, CrashAdversary, CrashScript, LeaderKiller, NoCrashes, RandomInterleave, RoundRobin,
    Script,
};
use nc_sched::hybrid::{BenignHybrid, HybridSpec, RandomHybrid, WritePreemptor};
use nc_sched::{stream_rng, FailureModel, Noise, TimingModel};

const QUEUES: [QueuePolicy; 3] = [QueuePolicy::Heap, QueuePolicy::Tree, QueuePolicy::Auto];

fn algorithms() -> [Algorithm; 5] {
    [
        Algorithm::Lean,
        Algorithm::Skipping,
        Algorithm::Randomized,
        Algorithm::Bounded { r_max: 8 },
        Algorithm::Backup,
    ]
}

fn failure_models() -> [FailureModel; 2] {
    [FailureModel::None, FailureModel::Random { per_op: 0.05 }]
}

fn exp_timing() -> TimingModel {
    TimingModel::figure1(Noise::Exponential { mean: 1.0 })
}

/// Reference for one noisy run straight through [`drive_noisy`] (fresh
/// scratch per call, like the experiments' historical usage),
/// optionally with history.
fn reference_noisy(
    alg: Algorithm,
    inputs: &[nc_memory::Bit],
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
    policy: QueuePolicy,
    history: Option<&mut Vec<nc_memory::Event>>,
) -> RunReport {
    let mut scratch = EngineScratch::with_queue(policy);
    let mut inst = setup::build(alg, inputs, seed);
    drive_noisy(&mut scratch, &mut inst, timing, seed, limits, None, history)
}

/// The headline matrix: algorithms × failure models × queue policies ×
/// history recording, one `SimRun` reused across seeds vs fresh
/// reference runs.
#[test]
fn noisy_builder_matches_internals_across_the_matrix() {
    for alg in algorithms() {
        for failures in failure_models() {
            for policy in QUEUES {
                for record in [false, true] {
                    let inputs = setup::half_and_half(8);
                    let timing = exp_timing();
                    let mut sim = Sim::new(alg)
                        .inputs(inputs.clone())
                        .timing(timing.clone())
                        .faults(failures)
                        .queue_policy(policy);
                    if record {
                        sim = sim.record_history();
                    }
                    let mut sim = sim.build();
                    let timing = timing.with_failures(failures);
                    for seed in 0..3 {
                        let built = sim.run(seed);
                        let mut legacy_history = Vec::new();
                        let legacy = reference_noisy(
                            alg,
                            &inputs,
                            &timing,
                            seed,
                            Limits::run_to_completion(),
                            policy,
                            record.then_some(&mut legacy_history),
                        );
                        assert_eq!(
                            built, legacy,
                            "{alg:?} × {failures:?} × {policy:?} × history={record} × seed {seed}"
                        );
                        if record {
                            assert_eq!(
                                sim.history(),
                                legacy_history.as_slice(),
                                "histories diverged: {alg:?} seed {seed}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Lane widths × queue policies: `TrialSet` sweeps (which pick the
/// lockstep batch driver for eligible configs) vs per-seed reference runs.
#[test]
fn trialset_lanes_match_internal_sequential_runs() {
    for alg in [Algorithm::Lean, Algorithm::Randomized] {
        for policy in QUEUES {
            for lanes in [1usize, 2, 4, 7] {
                let inputs = setup::half_and_half(9);
                let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
                let reports = Sim::new(alg)
                    .inputs(inputs.clone())
                    .timing(timing.clone())
                    .limits(Limits::first_decision())
                    .queue_policy(policy)
                    .trials(13)
                    .seed0(400)
                    .seed_stride(7)
                    .threads(1)
                    .lanes(lanes)
                    .reports();
                for (t, report) in reports.iter().enumerate() {
                    let seed = 400 + 7 * t as u64;
                    let mut scratch = EngineScratch::with_queue(policy);
                    let mut inst = setup::build(alg, &inputs, seed);
                    let legacy = drive_noisy(
                        &mut scratch,
                        &mut inst,
                        &timing,
                        seed,
                        Limits::first_decision(),
                        None,
                        None,
                    );
                    assert_eq!(
                        *report, legacy,
                        "{alg:?} × {policy:?} × {lanes} lanes, trial {t}"
                    );
                }
            }
        }
    }
}

/// Crash adversaries through the builder factory vs the internal
/// `Option<&mut dyn CrashAdversary>` threading, with histories.
#[test]
fn crash_adversaries_match_internals() {
    type MakeCrash = fn() -> Box<dyn CrashAdversary>;
    let adversaries: [MakeCrash; 2] = [
        || Box::new(LeaderKiller::new(3, 1)),
        || Box::new(CrashScript::new(vec![(0, 2), (3, 5)])),
    ];
    for make in adversaries {
        for policy in QUEUES {
            let inputs = setup::half_and_half(6);
            let mut sim = Sim::new(Algorithm::Lean)
                .inputs(inputs.clone())
                .timing(exp_timing())
                .queue_policy(policy)
                .crash_adversary(move |_| make())
                .record_history()
                .build();
            for seed in 0..3 {
                let built = sim.run(seed);
                let mut crash = make();
                let mut history = Vec::new();
                let mut scratch = EngineScratch::with_queue(policy);
                let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
                let legacy = drive_noisy(
                    &mut scratch,
                    &mut inst,
                    &exp_timing(),
                    seed,
                    Limits::run_to_completion(),
                    Some(crash.as_mut()),
                    Some(&mut history),
                );
                assert_eq!(built, legacy, "{policy:?} seed {seed}");
                assert_eq!(sim.history(), history.as_slice(), "{policy:?} seed {seed}");
            }
        }
    }
}

/// Adversarial schedules (with and without crashes) through the builder
/// vs `drive_adversarial`.
#[test]
fn adversarial_builder_matches_internals() {
    type MakeAdv = fn(u64) -> Box<dyn Adversary>;
    let adversaries: [MakeAdv; 3] = [
        |_| Box::new(RoundRobin::new()),
        |seed| Box::new(RandomInterleave::new(stream_rng(seed, 0, 4))),
        |_| Box::new(Script::new(vec![0, 1, 2, 0, 1, 2, 0])),
    ];
    for alg in algorithms() {
        for make in adversaries {
            for crashes in [false, true] {
                let inputs = setup::half_and_half(3);
                let mut sim = Sim::new(alg)
                    .inputs(inputs.clone())
                    .adversary(make)
                    .limits(Limits::run_to_completion().with_max_ops(100_000));
                if crashes {
                    sim = sim.crash_adversary(|_| CrashScript::new(vec![(1, 3)]));
                }
                let mut sim = sim.build();
                for seed in 0..2 {
                    let built = sim.run(seed);
                    let mut adv = make(seed);
                    let mut inst = setup::build(alg, &inputs, seed);
                    let legacy = if crashes {
                        let mut crash = CrashScript::new(vec![(1, 3)]);
                        drive_adversarial(
                            &mut inst,
                            adv.as_mut(),
                            &mut crash,
                            Limits::run_to_completion().with_max_ops(100_000),
                        )
                    } else {
                        drive_adversarial(
                            &mut inst,
                            adv.as_mut(),
                            &mut NoCrashes,
                            Limits::run_to_completion().with_max_ops(100_000),
                        )
                    };
                    assert_eq!(built, legacy, "{alg:?} crashes={crashes} seed {seed}");
                }
            }
        }
    }
}

/// Hybrid schedules through the builder vs `drive_hybrid`, across
/// policies, quanta, and initial-quantum burns.
#[test]
fn hybrid_builder_matches_internals() {
    for n in [2usize, 4, 6] {
        for quantum in [4u32, 8, 12] {
            for burn in [0u32, quantum / 2] {
                let inputs = setup::alternating(n);
                let spec = HybridSpec::uniform(n, quantum).with_initial_used(vec![burn; n]);
                for kind in 0..3 {
                    let spec_for_builder = spec.clone();
                    let mut sim = match kind {
                        0 => Sim::new(Algorithm::Lean)
                            .inputs(inputs.clone())
                            .hybrid(spec_for_builder, |_| {
                                Box::new(BenignHybrid) as Box<dyn nc_sched::HybridPolicy>
                            }),
                        1 => Sim::new(Algorithm::Lean).inputs(inputs.clone()).hybrid(
                            spec_for_builder,
                            |seed| {
                                Box::new(RandomHybrid::new(stream_rng(seed, 0, 4)))
                                    as Box<dyn nc_sched::HybridPolicy>
                            },
                        ),
                        _ => Sim::new(Algorithm::Lean)
                            .inputs(inputs.clone())
                            .hybrid(spec_for_builder, |_| {
                                Box::new(WritePreemptor) as Box<dyn nc_sched::HybridPolicy>
                            }),
                    }
                    .limits(Limits::run_to_completion().with_max_ops(200_000))
                    .build();
                    for seed in 0..2 {
                        let built = sim.run(seed);
                        let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
                        let mut policy: Box<dyn nc_sched::HybridPolicy> = match kind {
                            0 => Box::new(BenignHybrid),
                            1 => Box::new(RandomHybrid::new(stream_rng(seed, 0, 4))),
                            _ => Box::new(WritePreemptor),
                        };
                        let legacy = drive_hybrid(
                            &mut inst,
                            &spec,
                            policy.as_mut(),
                            Limits::run_to_completion().with_max_ops(200_000),
                        );
                        assert_eq!(
                            built, legacy,
                            "n={n} q={quantum} burn={burn} kind={kind} seed {seed}"
                        );
                    }
                }
            }
        }
    }
}

/// Thread fan-out is per-`TrialSet` state and never changes results.
#[test]
fn trialset_threads_are_invisible() {
    let inputs = setup::half_and_half(10);
    let sweep = |threads: usize| {
        Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(exp_timing())
            .limits(Limits::first_decision())
            .trials(40)
            .seed0(9000)
            .seed_stride(11)
            .threads(threads)
            .reports()
    };
    let reference = sweep(1);
    for threads in [2, 3, 8, 0] {
        assert_eq!(sweep(threads), reference, "{threads} threads");
    }
}
