//! The SoA engine's oracle-pinning suite: the optimized driver (SoA
//! scratch, either queue, any pipeline width) must produce **byte
//! identical** [`nc_engine::RunReport`]s to the naive BinaryHeap
//! baseline (`nc_engine::baseline`, the untouched seed implementation)
//! across the full scenario matrix — algorithms × noise distributions ×
//! crash adversaries × failure models × both queue implementations.
//!
//! Runs only with the `baseline` feature (which compiles the oracle
//! into the library): `cargo test -p nc-engine --features baseline`.
//! Workspace-level `cargo test --workspace` also enables it through
//! `nc-bench`'s feature unification; CI carries an explicit
//! `--features baseline` leg so the suite can never silently vanish.

#![cfg(feature = "baseline")]
// This suite pins the public drive internals against the oracle; their
// equivalence to the `sim::Sim` builder is pinned separately by
// `tests/sim_equivalence.rs`, so the chain
// baseline == drive internals == builder stays closed.

use nc_engine::baseline::{run_noisy_baseline, run_noisy_with_baseline};
use nc_engine::noisy::{drive_noisy, drive_noisy_batch, drive_noisy_with_batch_plan};
use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, EngineScratch, Limits, QueuePolicy, RunReport};
use nc_memory::{Bit, DenseRaceMemory, FaultyMemory, SimMemory};
use nc_sched::adversary::{CrashAdversary, CrashScript, LeaderKiller};
use nc_sched::{DelayPolicy, FailureModel, Noise, StartTimes, TimingModel};
use proptest::prelude::*;

/// Micro-batch sizes the batched-core matrix forces (1 = the legacy
/// per-event loop, the others route through `step_batch`).
const BATCHES: [usize; 4] = [1, 4, 8, 64];

const QUEUES: [QueuePolicy; 3] = [QueuePolicy::Heap, QueuePolicy::Tree, QueuePolicy::Auto];

fn algorithms() -> [Algorithm; 5] {
    [
        Algorithm::Lean,
        Algorithm::Skipping,
        Algorithm::Randomized,
        Algorithm::Bounded { r_max: 8 },
        Algorithm::Backup,
    ]
}

/// Runs `(alg, inputs, timing, seed, limits)` through the optimized
/// engine under `policy` and asserts the report equals the baseline's.
fn assert_matches_oracle(
    alg: Algorithm,
    inputs: &[Bit],
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
    policy: QueuePolicy,
) -> RunReport {
    let mut scratch = EngineScratch::with_queue(policy);
    let mut inst_opt = setup::build(alg, inputs, seed);
    let mut inst_ref = setup::build(alg, inputs, seed);
    let optimized = drive_noisy(
        &mut scratch,
        &mut inst_opt,
        timing,
        seed,
        limits,
        None,
        None,
    );
    let oracle = run_noisy_baseline(&mut inst_ref, timing, seed, limits);
    assert_eq!(
        optimized, oracle,
        "{alg:?} × {timing:?} × seed {seed} × {policy:?}"
    );
    optimized
}

/// The headline matrix: every algorithm × every Figure 1 noise
/// distribution × both queues (plus auto), run to completion and to
/// first decision.
#[test]
fn algorithms_by_noise_by_queue_match_oracle() {
    for alg in algorithms() {
        for (_, noise) in Noise::figure1_suite() {
            let timing = TimingModel::figure1(noise);
            for policy in QUEUES {
                for seed in 0..2 {
                    assert_matches_oracle(
                        alg,
                        &setup::half_and_half(8),
                        &timing,
                        seed,
                        Limits::run_to_completion(),
                        policy,
                    );
                    assert_matches_oracle(
                        alg,
                        &setup::alternating(6),
                        &timing,
                        seed,
                        Limits::first_decision(),
                        policy,
                    );
                }
            }
        }
    }
}

/// Random halting failures across both queues (exercises the general
/// loop's stale-event drain and the failure-RNG stream order).
#[test]
fn random_failures_by_queue_match_oracle() {
    for per_op in [0.01, 0.2, 0.9] {
        let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 })
            .with_failures(FailureModel::Random { per_op });
        for policy in QUEUES {
            for seed in 0..3 {
                assert_matches_oracle(
                    Algorithm::Lean,
                    &setup::half_and_half(8),
                    &timing,
                    seed,
                    Limits::run_to_completion(),
                    policy,
                );
            }
        }
    }
}

/// Adaptive and scripted crash adversaries across both queues, with
/// histories compared event by event.
#[test]
fn crash_adversaries_by_queue_match_oracle() {
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
    type MakeCrash = fn() -> Box<dyn CrashAdversary>;
    let adversaries: [MakeCrash; 3] = [
        || Box::new(LeaderKiller::new(3, 2)),
        || Box::new(CrashScript::new(vec![(0, 1), (2, 5)])),
        || Box::new(CrashScript::new(vec![(1, 3)])),
    ];
    for make in adversaries {
        for policy in QUEUES {
            for seed in 0..3 {
                let inputs = setup::half_and_half(6);
                let mut scratch = EngineScratch::with_queue(policy);
                let mut inst_opt = setup::build(Algorithm::Lean, &inputs, seed);
                let mut inst_ref = setup::build(Algorithm::Lean, &inputs, seed);
                let mut crash_opt = make();
                let mut crash_ref = make();
                let mut hist_opt = Vec::new();
                let mut hist_ref = Vec::new();
                let optimized = drive_noisy(
                    &mut scratch,
                    &mut inst_opt,
                    &timing,
                    seed,
                    Limits::run_to_completion(),
                    Some(crash_opt.as_mut()),
                    Some(&mut hist_opt),
                );
                let oracle = run_noisy_with_baseline(
                    &mut inst_ref,
                    &timing,
                    seed,
                    Limits::run_to_completion(),
                    Some(crash_ref.as_mut()),
                    Some(&mut hist_ref),
                );
                assert_eq!(optimized, oracle, "crash × {policy:?} × seed {seed}");
                assert_eq!(
                    hist_opt, hist_ref,
                    "history diverged, {policy:?} seed {seed}"
                );
            }
        }
    }
}

/// Per-kind noise (batching disabled), adversarial delay policies, and
/// non-default start times — the general loop's sampling paths — across
/// both queues.
#[test]
fn general_loop_configs_by_queue_match_oracle() {
    let configs = [
        TimingModel {
            start: StartTimes::dithered(),
            delay: DelayPolicy::Periodic {
                period: 3,
                extra: 0.5,
            },
            noise: nc_sched::OpNoise::per_kind(
                Noise::Exponential { mean: 1.0 },
                Noise::Uniform { lo: 0.0, hi: 2.0 },
            ),
            failures: FailureModel::None,
        },
        TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 }).with_start(
            StartTimes::Staggered {
                gap: 50.0,
                dither: 0.25,
            },
        ),
        TimingModel::figure1(Noise::Geometric { p: 0.5 })
            .with_delay(DelayPolicy::SaveAndSpend { m: 0.5, period: 4 }),
    ];
    for timing in &configs {
        for policy in QUEUES {
            for seed in 0..2 {
                assert_matches_oracle(
                    Algorithm::Lean,
                    &setup::half_and_half(9),
                    timing,
                    seed,
                    Limits::run_to_completion(),
                    policy,
                );
            }
        }
    }
}

/// A run big enough that `QueuePolicy::Auto` actually selects the tree
/// (n ≥ TREE_MIN_N) stays pinned to the oracle.
#[test]
fn auto_policy_above_tree_threshold_matches_oracle() {
    let n = nc_sched::select::TREE_MIN_N;
    let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
    let report = assert_matches_oracle(
        Algorithm::Lean,
        &setup::half_and_half(n),
        &timing,
        1,
        Limits::first_decision(),
        QueuePolicy::Auto,
    );
    assert!(report.first_decision_round.is_some());
}

/// Alternative word-store planes against the oracle: the builder on
/// `DenseRaceMemory` (and on disarmed `FaultyMemory` wrappers) must
/// match the naive `SimMemory` baseline bit for bit across algorithms ×
/// queues × lane widths — closing the memory-plane chain
/// `baseline == SimMemory == DenseRaceMemory` end to end.
/// (`tests/memory_planes.rs` carries the oracle-free half of this
/// matrix so it also runs without `--features baseline`.)
#[test]
fn dense_backend_matches_oracle_across_matrix() {
    let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
    for alg in algorithms() {
        for policy in QUEUES {
            for lanes in [1usize, 3] {
                let inputs = setup::half_and_half(7);
                let reports = Sim::new(alg)
                    .inputs(inputs.clone())
                    .timing(timing.clone())
                    .queue_policy(policy)
                    .memory_backend(DenseRaceMemory::new())
                    .trials(4)
                    .seed0(60)
                    .seed_stride(5)
                    .threads(1)
                    .lanes(lanes)
                    .reports();
                let wrapped = Sim::new(alg)
                    .inputs(inputs.clone())
                    .timing(timing.clone())
                    .queue_policy(policy)
                    .memory_backend(FaultyMemory::pass_through(SimMemory::new()))
                    .trials(4)
                    .seed0(60)
                    .seed_stride(5)
                    .threads(1)
                    .lanes(lanes)
                    .reports();
                for (t, report) in reports.iter().enumerate() {
                    let seed = 60 + 5 * t as u64;
                    let mut inst = setup::build(alg, &inputs, seed);
                    let oracle =
                        run_noisy_baseline(&mut inst, &timing, seed, Limits::run_to_completion());
                    assert_eq!(
                        *report, oracle,
                        "dense vs oracle: {alg:?} × {policy:?} × {lanes} lanes, trial {t}"
                    );
                    assert_eq!(
                        wrapped[t], oracle,
                        "faulty-off vs oracle: {alg:?} × {policy:?} × {lanes} lanes, trial {t}"
                    );
                }
            }
        }
    }
}

/// Determinism across pipeline widths: a sweep's reports are identical
/// whether trials run one at a time or interleaved K-wide, for several
/// K — and equal to the oracle's, trial by trial.
#[test]
fn pipelined_widths_match_sequential_and_oracle() {
    let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
    let inputs = setup::half_and_half(10);
    let trials: u64 = 12;
    let seed_of = |t: u64| 900 + t * 13;

    let sweep = |width: usize| -> Vec<RunReport> {
        let mut out = Vec::new();
        let mut scratches: Vec<EngineScratch> = (0..width).map(|_| EngineScratch::new()).collect();
        let mut t = 0;
        while t < trials {
            let g = ((trials - t) as usize).min(width);
            let seeds: Vec<u64> = (0..g as u64).map(|j| seed_of(t + j)).collect();
            let mut insts: Vec<_> = seeds
                .iter()
                .map(|&s| setup::build(Algorithm::Lean, &inputs, s))
                .collect();
            out.extend(drive_noisy_batch(
                &mut scratches[..g],
                &mut insts,
                &timing,
                &seeds,
                Limits::first_decision(),
            ));
            t += g as u64;
        }
        out
    };

    let sequential = sweep(1);
    for width in [2usize, 3, 4, 7] {
        assert_eq!(sweep(width), sequential, "width {width} diverged");
    }
    for (t, report) in sequential.iter().enumerate() {
        let seed = seed_of(t as u64);
        let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
        let oracle = run_noisy_baseline(&mut inst, &timing, seed, Limits::first_decision());
        assert_eq!(*report, oracle, "trial {t} diverged from oracle");
    }
}

/// Drives `(alg, inputs, timing, seed, limits)` under `policy` with a
/// forced micro-batch size `k` and asserts the report equals the
/// baseline's.
fn assert_batch_matches_oracle(
    alg: Algorithm,
    inputs: &[Bit],
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
    policy: QueuePolicy,
    k: usize,
) {
    let mut scratch = EngineScratch::with_queue(policy);
    scratch.set_event_batch(k);
    let mut inst_opt = setup::build(alg, inputs, seed);
    let mut inst_ref = setup::build(alg, inputs, seed);
    let optimized = drive_noisy(
        &mut scratch,
        &mut inst_opt,
        timing,
        seed,
        limits,
        None,
        None,
    );
    let oracle = run_noisy_baseline(&mut inst_ref, timing, seed, limits);
    assert_eq!(
        optimized, oracle,
        "{alg:?} × {timing:?} × seed {seed} × {policy:?} × K={k}"
    );
}

/// The batched-vs-sequential differential matrix (the batched core may
/// change only how the schedule is *driven*, never the schedule):
/// algorithms × noise × queues × K ∈ {1, 4, 8, 64}, run to completion
/// and to first decision, every cell pinned to the naive oracle.
/// Non-lean algorithms take the `load_lean_hot` fallback, which must be
/// equally invisible at every K.
#[test]
fn batched_k_matrix_matches_oracle() {
    let noises = [
        Noise::Uniform { lo: 0.0, hi: 2.0 },
        Noise::Exponential { mean: 1.0 },
    ];
    for alg in algorithms() {
        for noise in noises {
            let timing = TimingModel::figure1(noise);
            for policy in QUEUES {
                for k in BATCHES {
                    for seed in 0..2 {
                        assert_batch_matches_oracle(
                            alg,
                            &setup::half_and_half(8),
                            &timing,
                            seed,
                            Limits::run_to_completion(),
                            policy,
                            k,
                        );
                    }
                    // Mid-batch early stop: the batch cut at the first
                    // decision must not leak extra steps into the report.
                    assert_batch_matches_oracle(
                        alg,
                        &setup::alternating(10),
                        &timing,
                        1,
                        Limits::first_decision(),
                        policy,
                        k,
                    );
                }
            }
        }
    }
}

/// Crash adversaries and random failures force the general (non-lean)
/// loop, which ignores the batch knob — K must be inert there, with
/// histories identical event by event.
#[test]
fn batched_k_with_crashes_and_failures_matches_oracle() {
    let crash_timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
    let failure_timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 })
        .with_failures(FailureModel::Random { per_op: 0.05 });
    for policy in QUEUES {
        for k in BATCHES {
            for seed in 0..2 {
                // Scripted + adaptive crashes, history compared.
                let inputs = setup::half_and_half(6);
                let mut scratch = EngineScratch::with_queue(policy);
                scratch.set_event_batch(k);
                let mut inst_opt = setup::build(Algorithm::Lean, &inputs, seed);
                let mut inst_ref = setup::build(Algorithm::Lean, &inputs, seed);
                let mut crash_opt = LeaderKiller::new(3, 2);
                let mut crash_ref = LeaderKiller::new(3, 2);
                let mut hist_opt = Vec::new();
                let mut hist_ref = Vec::new();
                let optimized = drive_noisy(
                    &mut scratch,
                    &mut inst_opt,
                    &crash_timing,
                    seed,
                    Limits::run_to_completion(),
                    Some(&mut crash_opt),
                    Some(&mut hist_opt),
                );
                let oracle = run_noisy_with_baseline(
                    &mut inst_ref,
                    &crash_timing,
                    seed,
                    Limits::run_to_completion(),
                    Some(&mut crash_ref),
                    Some(&mut hist_ref),
                );
                assert_eq!(
                    optimized, oracle,
                    "crash × {policy:?} × seed {seed} × K={k}"
                );
                assert_eq!(
                    hist_opt, hist_ref,
                    "history diverged, {policy:?} seed {seed} K={k}"
                );
                // Random halting failures (fast loop disabled).
                assert_batch_matches_oracle(
                    Algorithm::Lean,
                    &setup::half_and_half(8),
                    &failure_timing,
                    seed,
                    Limits::run_to_completion(),
                    policy,
                    k,
                );
            }
        }
    }
}

/// The builder-level `Sim::event_batch` knob over the stride-specialized
/// dense plane: every K must match the oracle trial for trial, at lane
/// widths that route through both `run_one` and `run_span_batch`.
#[test]
fn event_batch_knob_on_dense_plane_matches_oracle() {
    let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
    let inputs = setup::half_and_half(12);
    for k in BATCHES {
        for lanes in [1usize, 3] {
            let reports = Sim::new(Algorithm::Lean)
                .inputs(inputs.clone())
                .timing(timing.clone())
                .memory_backend(DenseRaceMemory::new())
                .event_batch(k)
                .trials(4)
                .seed0(7)
                .seed_stride(11)
                .threads(1)
                .lanes(lanes)
                .reports();
            for (t, report) in reports.iter().enumerate() {
                let seed = 7 + 11 * t as u64;
                let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
                let oracle =
                    run_noisy_baseline(&mut inst, &timing, seed, Limits::run_to_completion());
                assert_eq!(
                    *report, oracle,
                    "dense plane × K={k} × {lanes} lanes, trial {t}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Changing K *mid-run* — an adversarial plan that hands the driver
    /// a different batch size before every batch, including zeros — must
    /// produce a `RunReport` identical to the sequential oracle's,
    /// including `max_round`.
    #[test]
    fn random_mid_run_batch_plan_matches_oracle(
        ks in proptest::collection::vec(0usize..96, 1..24),
        seed in 0u64..1000,
        n in 1usize..36,
    ) {
        let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
        let inputs = setup::half_and_half(n);
        let mut inst_ref = setup::build(Algorithm::Lean, &inputs, seed);
        let oracle = run_noisy_baseline(&mut inst_ref, &timing, seed, Limits::run_to_completion());

        let mut i = 0usize;
        let mut plan = move || {
            let k = ks[i % ks.len()];
            i += 1;
            k
        };
        let mut scratch = EngineScratch::new();
        let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
        let batched = drive_noisy_with_batch_plan(
            &mut scratch,
            &mut inst,
            &timing,
            seed,
            Limits::run_to_completion(),
            &mut plan,
        );
        prop_assert_eq!(batched.max_round, oracle.max_round, "max_round diverged");
        prop_assert_eq!(batched, oracle);
    }
}
