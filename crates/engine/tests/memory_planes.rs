//! Memory-plane pinning suite: the word-store backend behind a run is a
//! pure performance/instrumentation knob. With faults disabled, every
//! [`nc_memory::MemStore`] backend must produce **byte identical**
//! [`nc_engine::RunReport`]s — [`SimMemory`] (the default),
//! [`DenseRaceMemory`], and a disarmed/empty [`FaultyMemory`] wrapper —
//! across algorithms × schedules × queue policies × lane widths.
//! (`tests/soa_equivalence.rs` additionally pins the dense backend to
//! the naive oracle under `--features baseline`, closing the chain
//! `baseline == SimMemory == DenseRaceMemory`.)
//!
//! With faults *enabled*, the requirement becomes determinism: a
//! faulted run is a pure function of its seed — bit-identical fault
//! streams at every thread count and lane width.

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, Limits, QueuePolicy, RunReport};
use nc_memory::{Addr, Bit, DenseRaceMemory, FaultSpec, FaultyMemory, MemStore, SimMemory};
use nc_sched::adversary::{LeaderKiller, RandomInterleave, RoundRobin};
use nc_sched::hybrid::{HybridSpec, WritePreemptor};
use nc_sched::{stream_rng, FailureModel, Noise, TimingModel};

const QUEUES: [QueuePolicy; 3] = [QueuePolicy::Heap, QueuePolicy::Tree, QueuePolicy::Auto];

fn algorithms() -> [Algorithm; 5] {
    [
        Algorithm::Lean,
        Algorithm::Skipping,
        Algorithm::Randomized,
        Algorithm::Bounded { r_max: 8 },
        Algorithm::Backup,
    ]
}

fn exp_timing() -> TimingModel {
    TimingModel::figure1(Noise::Exponential { mean: 1.0 })
}

/// One noisy-schedule run of `alg` on the backend `mem`.
fn run_noisy_on<M: MemStore>(
    alg: Algorithm,
    mem: M,
    policy: QueuePolicy,
    failures: FailureModel,
    seed: u64,
) -> RunReport {
    Sim::new(alg)
        .inputs(setup::half_and_half(8))
        .timing(exp_timing())
        .faults(failures)
        .queue_policy(policy)
        .memory_backend(mem)
        .build()
        .run(seed)
}

/// The headline matrix: algorithms × failure models × queue policies,
/// `SimMemory` vs `DenseRaceMemory` vs pass-through `FaultyMemory` over
/// each.
#[test]
fn fault_free_backends_agree_across_the_noisy_matrix() {
    for alg in algorithms() {
        for failures in [FailureModel::None, FailureModel::Random { per_op: 0.05 }] {
            for policy in QUEUES {
                for seed in 0..3 {
                    let reference = run_noisy_on(alg, SimMemory::new(), policy, failures, seed);
                    let dense = run_noisy_on(alg, DenseRaceMemory::new(), policy, failures, seed);
                    assert_eq!(
                        reference, dense,
                        "dense: {alg:?} × {failures:?} × {policy:?} × seed {seed}"
                    );
                    let wrapped_sim = run_noisy_on(
                        alg,
                        FaultyMemory::pass_through(SimMemory::new()),
                        policy,
                        failures,
                        seed,
                    );
                    assert_eq!(
                        reference, wrapped_sim,
                        "faulty(sim): {alg:?} × {failures:?} × {policy:?} × seed {seed}"
                    );
                    let wrapped_dense = run_noisy_on(
                        alg,
                        FaultyMemory::pass_through(DenseRaceMemory::new()),
                        policy,
                        failures,
                        seed,
                    );
                    assert_eq!(
                        reference, wrapped_dense,
                        "faulty(dense): {alg:?} × {failures:?} × {policy:?} × seed {seed}"
                    );
                }
            }
        }
    }
}

/// A tiny dense prefix forces mid-run growth (every algorithm's regions
/// overflow four words immediately): growth must be invisible too.
#[test]
fn dense_growth_path_is_invisible() {
    for alg in algorithms() {
        for seed in 0..2 {
            let reference = run_noisy_on(
                alg,
                SimMemory::new(),
                QueuePolicy::Auto,
                FailureModel::None,
                seed,
            );
            let dense = run_noisy_on(
                alg,
                DenseRaceMemory::with_rounds(1),
                QueuePolicy::Auto,
                FailureModel::None,
                seed,
            );
            assert_eq!(reference, dense, "{alg:?} seed {seed}");
        }
    }
}

/// Backends agree under the adversarial and hybrid schedules as well.
#[test]
fn fault_free_backends_agree_on_other_schedules() {
    for alg in algorithms() {
        let inputs = setup::half_and_half(4);
        let adversarial = |mem: DenseRaceMemory, dense: bool| {
            let sim = Sim::new(alg)
                .inputs(inputs.clone())
                .adversary(|seed| RandomInterleave::new(stream_rng(seed, 0, 4)))
                .limits(Limits::run_to_completion().with_max_ops(100_000));
            if dense {
                sim.memory_backend(mem).build().run(5)
            } else {
                sim.build().run(5)
            }
        };
        assert_eq!(
            adversarial(DenseRaceMemory::new(), false),
            adversarial(DenseRaceMemory::new(), true),
            "adversarial {alg:?}"
        );
    }
    // Hybrid (lean only: the quantum bound is the interesting case).
    let inputs = setup::alternating(4);
    let hybrid = |dense: bool| {
        let sim = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .hybrid(HybridSpec::uniform(4, 8), |_| WritePreemptor);
        if dense {
            sim.memory_backend(DenseRaceMemory::new()).build().run(0)
        } else {
            sim.build().run(0)
        }
    };
    assert_eq!(hybrid(false), hybrid(true), "hybrid schedule");
}

/// Lane widths and backends compose: a dense-backend `TrialSet` sweep is
/// bit-identical at every `(threads, lanes)` and to per-seed runs.
#[test]
fn dense_backend_sweeps_are_invariant_across_lanes_and_threads() {
    let inputs = setup::half_and_half(9);
    let sweep = |threads: usize, lanes: usize| {
        Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(exp_timing())
            .limits(Limits::first_decision())
            .memory_backend(DenseRaceMemory::new())
            .trials(13)
            .seed0(400)
            .seed_stride(7)
            .threads(threads)
            .lanes(lanes)
            .reports()
    };
    let reference = sweep(1, 1);
    for (threads, lanes) in [(1, 2), (1, 4), (1, 7), (2, 1), (4, 3), (0, 2)] {
        assert_eq!(sweep(threads, lanes), reference, "{threads} × {lanes}");
    }
    // And the plain-backend sweep is the same sweep.
    let plain = Sim::new(Algorithm::Lean)
        .inputs(inputs.clone())
        .timing(exp_timing())
        .limits(Limits::first_decision())
        .trials(13)
        .seed0(400)
        .seed_stride(7)
        .threads(1)
        .reports();
    assert_eq!(plain, reference, "dense vs plain sweep");
}

fn lossy_spec() -> FaultSpec {
    FaultSpec::new()
        .read_flip(0.02)
        .write_drop(0.02)
        .stuck_at(Addr::new(4), Bit::Zero)
}

/// Value-fault determinism: same seed ⇒ byte-identical reports (the
/// whole fault stream included) at 1 vs 4 threads and across lane
/// widths; different seeds genuinely vary the faults.
#[test]
fn value_faults_are_a_pure_function_of_the_seed() {
    let inputs = setup::half_and_half(8);
    let sweep = |threads: usize, lanes: usize| {
        Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(exp_timing())
            .limits(Limits::run_to_completion().with_max_ops(50_000))
            .value_faults(lossy_spec())
            .trials(24)
            .seed0(70)
            .seed_stride(3)
            .threads(threads)
            .lanes(lanes)
            .reports()
    };
    let reference = sweep(1, 1);
    for (threads, lanes) in [(4, 1), (1, 4), (4, 3), (0, 2)] {
        assert_eq!(
            sweep(threads, lanes),
            reference,
            "fault stream diverged at {threads} threads × {lanes} lanes"
        );
    }
    // Per-seed SimRun calls see the identical faulted executions.
    let mut sim = Sim::new(Algorithm::Lean)
        .inputs(inputs.clone())
        .timing(exp_timing())
        .limits(Limits::run_to_completion().with_max_ops(50_000))
        .value_faults(lossy_spec())
        .build();
    for (t, report) in reference.iter().enumerate() {
        assert_eq!(*report, sim.run(70 + 3 * t as u64), "trial {t}");
    }
    // Faults actually bite: some trial must differ from the clean run.
    let clean = Sim::new(Algorithm::Lean)
        .inputs(inputs)
        .timing(exp_timing())
        .limits(Limits::run_to_completion().with_max_ops(50_000))
        .trials(24)
        .seed0(70)
        .seed_stride(3)
        .threads(1)
        .reports();
    assert_ne!(clean, reference, "the lossy spec changed nothing");
}

/// Stuck-at faults bypass the stochastic stream entirely and compose
/// with any backend; sentinels installed at setup are not faulted.
#[test]
fn stuck_sentinel_registers_change_outcomes_deterministically() {
    // Stick both round-1 frontier slots (addresses 2 and 3 for the
    // race layout at base 0) at One: every process sees a tied frontier
    // forever on those slots, but later rounds proceed normally.
    let spec = FaultSpec::new()
        .stuck_at(Addr::new(2), Bit::One)
        .stuck_at(Addr::new(3), Bit::One);
    let run = |seed: u64| {
        Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(6))
            .timing(exp_timing())
            .limits(Limits::run_to_completion().with_max_ops(100_000))
            .memory_backend(DenseRaceMemory::new())
            .value_faults(spec.clone())
            .build()
            .run(seed)
    };
    assert_eq!(run(11), run(11), "stuck faults must be deterministic");
}

/// Value faults work under the untimed adversarial schedule too (they
/// are a memory property, not a timing-model property).
#[test]
fn value_faults_compose_with_adversarial_schedules() {
    let run = || {
        Sim::new(Algorithm::Lean)
            .inputs(setup::unanimous(4, Bit::One))
            .adversary(|_| RoundRobin::new())
            .limits(Limits::run_to_completion().with_max_ops(10_000))
            .value_faults(FaultSpec::new().read_flip(0.5))
            .build()
            .run(3)
    };
    assert_eq!(
        run(),
        run(),
        "adversarial faulted runs must be deterministic"
    );
}

/// The crash-adversary hook and value faults compose (both consult
/// seed-derived streams; neither may perturb the other's).
#[test]
fn value_faults_compose_with_crash_adversaries() {
    let run = || {
        Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(6))
            .timing(exp_timing())
            .limits(Limits::run_to_completion().with_max_ops(100_000))
            .crash_adversary(|_| LeaderKiller::new(2, 1))
            .value_faults(FaultSpec::new().write_drop(0.05))
            .build()
            .run(8)
    };
    assert_eq!(run(), run());
}
