//! The timed, noisy-scheduling driver (§3.1, §9) — optimized engine.
//!
//! Executes protocol operations in the order given by the noisy timing
//! model: process `i`'s `j`-th operation happens at
//! `S'_ij = Δ_i0 + Σ_{k≤j} (Δ_ik + X_ik + H_ik)`, with all the `Δ`, `X`,
//! `H` drawn from an [`nc_sched::TimingModel`]. An event queue with
//! deterministic tie-breaking realises the interleaving semantics; the
//! paper's zero-probability-of-simultaneity assumption is implemented by
//! ordering equal times by insertion sequence (reachable only through
//! f64 collisions, which the dithered start times make vanishingly
//! rare).
//!
//! The driver also applies adaptive crash adversaries (§10's non-random
//! failures) after every operation, and can record the full operation
//! history for the register-semantics checker.
//!
//! # Throughput design
//!
//! Figure 1 alone needs up to 10 000 trials per point, so this loop is
//! the workspace's hottest code. Three optimizations over the naive
//! driver (kept verbatim in [`crate::baseline`] and pinned equal by the
//! equivalence tests):
//!
//! 1. **Peek-and-replace event queue** — the common case pops one event
//!    and pushes exactly one successor for the same process (the "hold"
//!    operation). [`nc_sched::queue::EventQueue::replace_top`] does that
//!    as a single in-place traversal of a 4-ary tournament-select heap
//!    over 16-byte integer-keyed events, instead of `BinaryHeap`'s
//!    pop + push pair.
//! 2. **Reusable [`EngineScratch`]** — per-process states, RNG streams,
//!    the event queue, and the bookkeeping vectors are allocated once
//!    and re-seeded across trials, so a sweep's steady state allocates
//!    only its `RunReport`s.
//! 3. **Batched noise draws** — when reads and writes share one noise
//!    distribution (every Figure 1 configuration), each process draws
//!    up to [`NOISE_BATCH`] delays per RNG-dispatch instead of one,
//!    hoisting the distribution match and parameter validation out of
//!    the per-event path. Each process owns its stream, so batching
//!    cannot change any consumed value.
//!
//! The common-case loop ([`loop_fast`], taken when there is no crash
//! adversary, no history recording, and no random failures) executes
//! each event through the fused [`Protocol::step_status`] — one
//! (monomorphizable) call per event instead of the naive driver's four
//! virtual dispatches — and carries no per-event `Option` checks at
//! all. Everything else takes [`loop_general`]. Equal inputs produce
//! bit-identical reports on either path.

use rand::rngs::SmallRng;

use nc_core::{Protocol, Status};
use nc_memory::{Event, Op, OpKind};
use nc_sched::adversary::{CrashAdversary, ProcView};
use nc_sched::queue::{Event as QueuedEvent, EventQueue};
use nc_sched::rng::salts;
use nc_sched::{stream_rng, FailureModel, Noise, TimingModel};

use crate::report::{Limits, RunOutcome, RunReport};
use crate::setup::Instance;

/// Noise samples drawn per batched RNG refill (per process).
///
/// Figure 1's first-decision runs execute ~20-40 operations per process,
/// so 16 amortizes the dispatch well without over-drawing much for
/// processes that stop early.
pub const NOISE_BATCH: usize = 16;

/// Per-process simulation state. Lives in [`EngineScratch`] so sweeps
/// reuse the allocation across trials.
///
/// `repr(C)` pins the field order so everything the per-event path
/// touches (`pending`, `clock`, flags, buffer cursor) shares the
/// struct's first cache line; the RNGs and the sample buffer — touched
/// only on refills — sit behind it.
#[repr(C)]
struct ProcState {
    /// The operation this process's queued event will execute. Valid
    /// whenever the process has an event in the queue; caching it here
    /// saves a virtual `status()` call per event.
    pending: Op,
    /// Time at which the previous operation completed (or the start
    /// time before the first operation).
    clock: f64,
    /// 1-based index of the next operation.
    next_op: u64,
    /// Operations executed so far (reported as `RunReport::ops`).
    ops: u64,
    /// Next unconsumed index in `buf`; `buf_pos == buf_len` means empty.
    buf_pos: u32,
    /// Valid prefix length of `buf`.
    buf_len: u32,
    /// Next refill size: ramps 2 → 4 → … → [`NOISE_BATCH`], so processes
    /// that execute only a few operations (every process, in a
    /// first-decision run at large `n`) don't pay for a full batch up
    /// front.
    next_fill: u32,
    halted: bool,
    decided: bool,
    rng_noise: SmallRng,
    rng_failure: SmallRng,
    /// Pre-drawn noise delays (valid at `buf[buf_pos..buf_len]`).
    buf: [f64; NOISE_BATCH],
}

impl ProcState {
    /// Next batched noise delay, refilling from this process's own
    /// stream when the buffer is spent.
    #[inline]
    fn next_noise(&mut self, noise: &Noise) -> f64 {
        if self.buf_pos == self.buf_len {
            let fill = self.next_fill as usize;
            noise.fill(&mut self.rng_noise, &mut self.buf[..fill]);
            self.buf_pos = 0;
            self.buf_len = fill as u32;
            self.next_fill = (self.next_fill * 2).min(NOISE_BATCH as u32);
        }
        let x = self.buf[self.buf_pos as usize];
        self.buf_pos += 1;
        x
    }
}

/// Reusable engine working memory: per-process states (with their RNG
/// streams), the event queue, and per-run bookkeeping vectors.
///
/// Constructing these per trial is pure allocator churn at sweep scale;
/// a sweep keeps one `EngineScratch` (per worker thread) and passes it
/// to [`run_noisy_scratch`] for every trial. Reuse never leaks state
/// between trials: every field is re-seeded from the trial's own seed.
///
/// # Example
///
/// ```
/// use nc_engine::{noisy, setup, EngineScratch, Limits};
/// use nc_sched::{Noise, TimingModel};
///
/// let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
/// let inputs = setup::half_and_half(16);
/// let mut scratch = EngineScratch::new();
/// for seed in 0..10 {
///     let mut inst = setup::build(setup::Algorithm::Lean, &inputs, seed);
///     let report =
///         noisy::run_noisy_scratch(&mut scratch, &mut inst, &timing, seed, Limits::first_decision());
///     assert!(report.first_decision_round.is_some());
/// }
/// ```
#[derive(Default)]
pub struct EngineScratch {
    states: Vec<ProcState>,
    queue: EventQueue,
    decision_rounds: Vec<Option<usize>>,
}

impl std::fmt::Debug for EngineScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineScratch")
            .field("capacity", &self.states.capacity())
            .finish()
    }
}

impl EngineScratch {
    /// An empty scratch; buffers grow to the first trial's size and are
    /// reused from then on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-seeds every buffer for a fresh `n`-process trial.
    ///
    /// When the scratch already holds `n` states they are re-seeded in
    /// place (the common sweep case), skipping reconstruction of the
    /// sample buffers; the failure stream is only re-derived when the
    /// timing model can actually consume it. Neither shortcut is
    /// observable: streams are keyed by `(seed, pid, salt)` alone, and
    /// `buf` contents are dead until the cursor fields say otherwise.
    fn reset(&mut self, n: usize, seed: u64, timing: &TimingModel) {
        let need_failure_rng = !matches!(timing.failures, FailureModel::None);
        if self.states.len() == n {
            for (pid, st) in self.states.iter_mut().enumerate() {
                let mut rng_start = stream_rng(seed, pid as u64, salts::START);
                st.clock = timing.start_for(pid, &mut rng_start);
                st.next_op = 1;
                st.ops = 0;
                st.buf_pos = 0;
                st.buf_len = 0;
                st.next_fill = 2;
                st.halted = false;
                st.decided = false;
                st.rng_noise = stream_rng(seed, pid as u64, salts::NOISE);
                if need_failure_rng {
                    st.rng_failure = stream_rng(seed, pid as u64, salts::FAILURE);
                }
            }
        } else {
            self.states.clear();
            self.states.reserve(n);
            for pid in 0..n {
                let mut rng_start = stream_rng(seed, pid as u64, salts::START);
                self.states.push(ProcState {
                    // Placeholder until the priming pass caches the real op.
                    pending: Op::Read(nc_memory::Addr::new(0)),
                    clock: timing.start_for(pid, &mut rng_start),
                    next_op: 1,
                    ops: 0,
                    buf_pos: 0,
                    buf_len: 0,
                    next_fill: 2,
                    halted: false,
                    decided: false,
                    rng_noise: stream_rng(seed, pid as u64, salts::NOISE),
                    rng_failure: stream_rng(seed, pid as u64, salts::FAILURE),
                    buf: [0.0; NOISE_BATCH],
                });
            }
        }
        self.decision_rounds.clear();
        self.decision_rounds.resize(n, None);
        self.queue.clear();
    }
}

/// Runs an instance under the noisy-scheduling model.
///
/// `seed` drives the noise, failure, and start-time streams (independent
/// of the instance's protocol-coin streams, which were fixed at build
/// time). Returns when all processes have decided or halted, when the
/// first decision happens (if `limits.stop_at_first_decision`), or when
/// the operation budget runs out.
pub fn run_noisy<P: Protocol>(
    inst: &mut Instance<P>,
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
) -> RunReport {
    let mut scratch = EngineScratch::new();
    run_noisy_with_scratch(&mut scratch, inst, timing, seed, limits, None, None)
}

/// [`run_noisy`] with a caller-provided [`EngineScratch`], for sweeps
/// that run many trials and want the steady state allocation-free.
pub fn run_noisy_scratch<P: Protocol>(
    scratch: &mut EngineScratch,
    inst: &mut Instance<P>,
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
) -> RunReport {
    run_noisy_with_scratch(scratch, inst, timing, seed, limits, None, None)
}

/// [`run_noisy`] with an adaptive crash adversary and optional history
/// recording.
///
/// The crash adversary is consulted after every executed operation with
/// the current [`ProcView`]; returned pids halt immediately. If
/// `history` is `Some`, every executed operation is appended as an
/// [`Event`] (time, pid, op, observed value) suitable for
/// [`nc_memory::check_register_semantics_from`].
pub fn run_noisy_with<P: Protocol>(
    inst: &mut Instance<P>,
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
    crash: Option<&mut dyn CrashAdversary>,
    history: Option<&mut Vec<Event>>,
) -> RunReport {
    let mut scratch = EngineScratch::new();
    run_noisy_with_scratch(&mut scratch, inst, timing, seed, limits, crash, history)
}

/// The fully general entry point: scratch reuse, crash adversary, and
/// history recording. All other `run_noisy*` functions delegate here.
pub fn run_noisy_with_scratch<P: Protocol>(
    scratch: &mut EngineScratch,
    inst: &mut Instance<P>,
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
    crash: Option<&mut dyn CrashAdversary>,
    history: Option<&mut Vec<Event>>,
) -> RunReport {
    let n = inst.procs.len();
    scratch.reset(n, seed, timing);
    // Batched draws need one distribution for all op kinds; with
    // per-kind distributions the next draw depends on the next op's
    // kind, so fall back to per-event sampling.
    let batch: Option<Noise> = timing.noise.uniform_kind().copied();
    let mut seq = 0u64;

    // Prime the queue with each process's first operation.
    for pid in 0..n {
        let Status::Pending(op) = inst.procs[pid].status() else {
            continue;
        };
        let st = &mut scratch.states[pid];
        st.pending = op;
        match draw_increment(st, timing, batch.as_ref(), pid, op.kind()) {
            None => st.halted = true, // H_i1 = ∞: the op never occurs
            Some(inc) => {
                st.clock += inc;
                seq += 1;
                scratch
                    .queue
                    .push(QueuedEvent::new(st.clock, seq, pid as u32));
            }
        }
    }

    // Dispatch: the overwhelmingly common sweep configuration — no
    // crash adversary, no history recording, no random failures, one
    // noise distribution for both op kinds — gets a specialized loop
    // with no per-event Option checks, no failure draws, and no
    // stale-event filtering (without crashes or failures, a queued
    // process can only leave the queue by deciding, so no event is ever
    // stale). Everything else takes the general loop. Both produce
    // bit-identical results (pinned by the equivalence tests).
    let fast_eligible = crash.is_none()
        && history.is_none()
        && matches!(timing.failures, nc_sched::FailureModel::None);
    let out = match (fast_eligible, batch) {
        (true, Some(noise)) => loop_fast(scratch, inst, timing, &noise, seq, limits),
        _ => loop_general(
            scratch,
            inst,
            timing,
            batch.as_ref(),
            seq,
            limits,
            crash,
            history,
        ),
    };

    // Runs that were not cut off ended because every process decided or
    // halted (directly, or by the event queue draining of halted procs).
    let outcome = out.outcome.unwrap_or_else(|| {
        if scratch.states.iter().any(|s| s.decided) {
            RunOutcome::AllDecided
        } else {
            RunOutcome::AllHalted
        }
    });

    RunReport {
        n,
        outcome,
        decisions: inst.procs.iter().map(|p| p.status().decision()).collect(),
        decision_rounds: scratch.decision_rounds.clone(),
        ops: scratch.states.iter().map(|s| s.ops).collect(),
        halted: scratch.states.iter().map(|s| s.halted).collect(),
        first_decision_round: out.first_decision_round,
        first_decision_time: out.first_decision_time,
        total_ops: out.total_ops,
        sim_time: out.sim_time,
    }
}

/// What a driver loop observed; the caller folds it into a `RunReport`.
#[derive(Default)]
struct LoopOut {
    total_ops: u64,
    sim_time: f64,
    first_decision_round: Option<usize>,
    first_decision_time: Option<f64>,
    outcome: Option<RunOutcome>,
}

/// The specialized hot loop: no failures, no crash adversary, no
/// history, batched single-distribution noise.
fn loop_fast<P: Protocol>(
    scratch: &mut EngineScratch,
    inst: &mut Instance<P>,
    timing: &TimingModel,
    noise: &Noise,
    mut seq: u64,
    limits: Limits,
) -> LoopOut {
    let mut out = LoopOut::default();
    while let Some(&top) = scratch.queue.peek() {
        if out.total_ops >= limits.max_ops {
            out.outcome = Some(RunOutcome::OpCapReached);
            break;
        }
        let pid = top.pid() as usize;
        let time = top.time();
        out.sim_time = time;

        // Execute exactly one operation of `pid`, fused: the protocol
        // performs its own pending operation against the memory and
        // hands back the next status in one (monomorphized) call.
        let status = inst.procs[pid].step_status(&mut inst.mem);
        out.total_ops += 1;

        let st = &mut scratch.states[pid];
        st.ops += 1;
        match status {
            Status::Decided(_) => {
                scratch.queue.pop();
                st.decided = true;
                let round = inst.procs[pid].round();
                scratch.decision_rounds[pid] = Some(round);
                if out.first_decision_round.is_none() {
                    out.first_decision_round = Some(round);
                    out.first_decision_time = Some(time);
                    if limits.stop_at_first_decision {
                        out.outcome = Some(RunOutcome::FirstDecision);
                        break;
                    }
                }
            }
            Status::Pending(next_op) => {
                // The hold operation: reschedule the same process in
                // place. (`st.pending` stays stale here on purpose: the
                // fused step never reads it, and the noise is batched so
                // the next op's kind is not needed either.)
                let _ = next_op;
                let op_index = st.next_op;
                st.next_op += 1;
                let x = st.next_noise(noise);
                st.clock += timing.delay.delta(pid, op_index) + x;
                seq += 1;
                scratch
                    .queue
                    .replace_top(QueuedEvent::new(st.clock, seq, pid as u32));
            }
        }
    }
    out
}

/// The fully general loop: random failures, adaptive crash adversaries,
/// history recording, per-kind noise.
#[allow(clippy::too_many_arguments)]
fn loop_general<P: Protocol>(
    scratch: &mut EngineScratch,
    inst: &mut Instance<P>,
    timing: &TimingModel,
    batch: Option<&Noise>,
    mut seq: u64,
    limits: Limits,
    mut crash: Option<&mut dyn CrashAdversary>,
    mut history: Option<&mut Vec<Event>>,
) -> LoopOut {
    let mut out = LoopOut::default();
    // Processes that are neither decided nor halted; when it reaches 0
    // the run is over. (A counter, not a per-operation scan: the scan
    // would make the driver O(n) per event.)
    let mut live_undecided = scratch.states.iter().filter(|s| !s.halted).count();

    'main: while let Some(&top) = scratch.queue.peek() {
        let pid = top.pid() as usize;
        let time = top.time();
        {
            // Stale events exist only under a crash adversary (a queued
            // process halted out from under its event); drain them.
            let st = &scratch.states[pid];
            if st.halted || st.decided {
                scratch.queue.pop();
                continue;
            }
        }
        if out.total_ops >= limits.max_ops {
            out.outcome = Some(RunOutcome::OpCapReached);
            break;
        }
        out.sim_time = time;

        // Execute exactly one operation of `pid`.
        let op = scratch.states[pid].pending;
        let observed = inst.mem.exec(op);
        if let Some(h) = history.as_deref_mut() {
            h.push(Event {
                time,
                pid: nc_memory::Pid::new(pid as u32),
                op,
                observed,
            });
        }
        let status = inst.procs[pid].advance_status(observed);
        out.total_ops += 1;
        scratch.states[pid].ops += 1;

        match status {
            Status::Decided(_) => {
                scratch.queue.pop();
                scratch.states[pid].decided = true;
                live_undecided -= 1;
                let round = inst.procs[pid].round();
                scratch.decision_rounds[pid] = Some(round);
                if out.first_decision_round.is_none() {
                    out.first_decision_round = Some(round);
                    out.first_decision_time = Some(time);
                    if limits.stop_at_first_decision {
                        out.outcome = Some(RunOutcome::FirstDecision);
                        break 'main;
                    }
                }
            }
            Status::Pending(next_op) => {
                let st = &mut scratch.states[pid];
                st.pending = next_op;
                match draw_increment(st, timing, batch, pid, next_op.kind()) {
                    None => {
                        st.halted = true; // H_ij = ∞: the op never occurs
                        scratch.queue.pop();
                        live_undecided -= 1;
                    }
                    Some(inc) => {
                        st.clock += inc;
                        seq += 1;
                        scratch
                            .queue
                            .replace_top(QueuedEvent::new(st.clock, seq, pid as u32));
                    }
                }
            }
        }

        // Adaptive crashes (skipped entirely without an adversary: the
        // view construction is O(n) and would dominate large-n sweeps).
        if let Some(crash) = crash.as_deref_mut() {
            live_undecided -= apply_crashes(crash, inst, &mut scratch.states);
        }

        if live_undecided == 0 {
            break;
        }
    }
    out
}

/// Draws `Δ_ij + X_ij + H_ij` for the next operation of `st`'s process,
/// consuming the failure stream first and the noise stream second
/// (matching the naive driver's stream order exactly). `None` means the
/// process halts (`H_ij = ∞`).
#[inline]
fn draw_increment(
    st: &mut ProcState,
    timing: &TimingModel,
    batch: Option<&Noise>,
    pid: usize,
    kind: OpKind,
) -> Option<f64> {
    let op_index = st.next_op;
    st.next_op += 1;
    if timing.failures.halts(&mut st.rng_failure) {
        return None;
    }
    let x = match batch {
        Some(noise) => st.next_noise(noise),
        None => timing.noise.sample(kind, &mut st.rng_noise),
    };
    Some(timing.delay.delta(pid, op_index) + x)
}

/// Applies adaptive crashes; returns how many live undecided processes
/// were halted.
fn apply_crashes<P: Protocol>(
    crash: &mut dyn CrashAdversary,
    inst: &Instance<P>,
    states: &mut [ProcState],
) -> usize {
    let enabled: Vec<bool> = states.iter().map(|s| !s.halted && !s.decided).collect();
    if !enabled.iter().any(|&e| e) {
        return 0;
    }
    let rounds: Vec<usize> = inst.procs.iter().map(|p| p.round()).collect();
    let steps: Vec<u64> = states.iter().map(|s| s.ops).collect();
    let victims = crash.crash_now(ProcView {
        enabled: &enabled,
        round: &rounds,
        steps: &steps,
    });
    let mut newly_halted = 0;
    for v in victims {
        if v < states.len() && !states[v].halted && !states[v].decided {
            states[v].halted = true;
            newly_halted += 1;
        }
    }
    newly_halted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{self, Algorithm};
    use nc_memory::{check_register_semantics_from, Bit};
    use nc_sched::adversary::{CrashScript, LeaderKiller};
    use nc_sched::{DelayPolicy, FailureModel, Noise, StartTimes};
    use std::collections::HashMap;

    fn exp_timing() -> TimingModel {
        TimingModel::figure1(Noise::Exponential { mean: 1.0 })
    }

    #[test]
    fn solo_process_decides_at_round_2() {
        let mut inst = setup::build(Algorithm::Lean, &[Bit::One], 1);
        let report = run_noisy(&mut inst, &exp_timing(), 1, Limits::run_to_completion());
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        assert_eq!(report.decisions, vec![Some(Bit::One)]);
        assert_eq!(report.first_decision_round, Some(2));
        assert_eq!(report.total_ops, 8);
        assert!(report.sim_time > 0.0);
    }

    #[test]
    fn split_inputs_terminate_and_agree_across_distributions() {
        for (name, noise) in Noise::figure1_suite() {
            let timing = TimingModel::figure1(noise);
            for seed in 0..5 {
                let inputs = setup::half_and_half(8);
                let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
                let report = run_noisy(&mut inst, &timing, seed, Limits::run_to_completion());
                assert_eq!(report.outcome, RunOutcome::AllDecided, "{name} seed {seed}");
                report.check_safety(&inputs).unwrap();
            }
        }
    }

    #[test]
    fn constant_noise_lockstep_hits_op_cap() {
        // Degenerate (constant) noise + simultaneous starts = lockstep:
        // the run must NOT terminate (it exhausts its op budget). This is
        // the model assumption failing, as the paper predicts.
        let timing = TimingModel {
            start: StartTimes::Simultaneous { dither: 1e-9 },
            delay: DelayPolicy::None,
            noise: nc_sched::OpNoise::same(Noise::Constant { value: 1.0 }),
            failures: FailureModel::None,
        };
        let inputs = setup::alternating(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 3);
        let report = run_noisy(
            &mut inst,
            &timing,
            3,
            Limits::run_to_completion().with_max_ops(200_000),
        );
        assert_eq!(report.outcome, RunOutcome::OpCapReached);
        assert_eq!(report.decided_count(), 0);
    }

    #[test]
    fn first_decision_limit_stops_early() {
        let inputs = setup::half_and_half(16);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 5);
        let report = run_noisy(&mut inst, &exp_timing(), 5, Limits::first_decision());
        assert_eq!(report.outcome, RunOutcome::FirstDecision);
        assert_eq!(report.decided_count(), 1);
        assert!(report.first_decision_round.is_some());
    }

    #[test]
    fn random_failures_halt_everyone_eventually() {
        // h = 0.9 per op: all 4 processes die almost immediately.
        let timing = exp_timing().with_failures(FailureModel::Random { per_op: 0.9 });
        let inputs = setup::alternating(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 9);
        let report = run_noisy(&mut inst, &timing, 9, Limits::run_to_completion());
        // Either all died undecided, or a lucky survivor decided first.
        assert!(
            report.outcome == RunOutcome::AllHalted || report.outcome == RunOutcome::AllDecided,
            "{:?}",
            report.outcome
        );
        assert!(report.halted.iter().filter(|&&h| h).count() >= 1);
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn mild_random_failures_still_decide() {
        let timing = exp_timing().with_failures(FailureModel::Random { per_op: 0.01 });
        for seed in 0..5 {
            let inputs = setup::half_and_half(6);
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let report = run_noisy(&mut inst, &timing, seed, Limits::run_to_completion());
            report.check_safety(&inputs).unwrap();
            assert!(
                report.decided_count() > 0 || report.outcome == RunOutcome::AllHalted,
                "seed {seed}: {report}"
            );
        }
    }

    #[test]
    fn leader_killer_crashes_do_not_break_safety() {
        for seed in 0..5 {
            let inputs = setup::half_and_half(6);
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let mut killer = LeaderKiller::new(3, 2);
            let report = run_noisy_with(
                &mut inst,
                &exp_timing(),
                seed,
                Limits::run_to_completion(),
                Some(&mut killer),
                None,
            );
            report.check_safety(&inputs).unwrap();
            assert!(report.decided_count() + report.halted.iter().filter(|&&h| h).count() > 0);
        }
    }

    #[test]
    fn scripted_crash_halts_the_right_process() {
        let inputs = setup::half_and_half(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 2);
        let mut crash = CrashScript::new(vec![(0, 1)]); // kill P0 after 1 op
        let report = run_noisy_with(
            &mut inst,
            &exp_timing(),
            2,
            Limits::run_to_completion(),
            Some(&mut crash),
            None,
        );
        assert!(report.halted[0]);
        assert_eq!(report.ops[0], 1);
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn recorded_history_satisfies_register_semantics() {
        let inputs = setup::half_and_half(6);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 8);
        // Sentinels were installed before the run; seed the checker with
        // them as initial state.
        let layout = nc_memory::RaceLayout::at_base(0);
        let mut initial = HashMap::new();
        initial.insert(layout.slot(Bit::Zero, 0), 1);
        initial.insert(layout.slot(Bit::One, 0), 1);
        let mut history = Vec::new();
        let report = run_noisy_with(
            &mut inst,
            &exp_timing(),
            8,
            Limits::run_to_completion(),
            None,
            Some(&mut history),
        );
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        assert_eq!(history.len(), report.total_ops as usize);
        check_register_semantics_from(&history, &initial)
            .expect("engine must implement the interleaving model");
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let inputs = setup::half_and_half(10);
        let run = |seed: u64| {
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let r = run_noisy(&mut inst, &exp_timing(), seed, Limits::run_to_completion());
            (r.first_decision_round, r.total_ops, r.decisions.clone())
        };
        assert_eq!(run(1234), run(1234));
        // And different seeds genuinely vary the execution.
        let a = run(1);
        let b = run(2);
        assert!(a != b, "distinct seeds produced identical runs (unlikely)");
    }

    #[test]
    fn all_algorithms_run_under_noise() {
        for alg in [
            Algorithm::Lean,
            Algorithm::Skipping,
            Algorithm::Randomized,
            Algorithm::Bounded { r_max: 10 },
            Algorithm::Backup,
        ] {
            let inputs = setup::half_and_half(4);
            let mut inst = setup::build(alg, &inputs, 77);
            let report = run_noisy(&mut inst, &exp_timing(), 77, Limits::run_to_completion());
            assert_eq!(report.outcome, RunOutcome::AllDecided, "{alg:?}");
            report.check_safety(&inputs).unwrap();
        }
    }

    #[test]
    fn staggered_starts_let_the_early_bird_win() {
        // One process starts at 0, others 1000 time units later: the
        // early process decides alone at round 2 (adaptivity: work
        // depends on contention, not n).
        let timing = exp_timing().with_start(StartTimes::Staggered {
            gap: 1000.0,
            dither: 0.0,
        });
        let inputs = vec![Bit::One, Bit::Zero, Bit::Zero];
        let mut inst = setup::build(Algorithm::Lean, &inputs, 4);
        let report = run_noisy(&mut inst, &timing, 4, Limits::run_to_completion());
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        assert_eq!(report.decisions[0], Some(Bit::One));
        assert_eq!(report.decision_rounds[0], Some(2));
        assert_eq!(report.agreement_value(), Some(Bit::One));
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn scratch_reuse_is_stateless_across_trials() {
        // Interleave very different trials through one scratch and check
        // each against a fresh-scratch run.
        let mut scratch = EngineScratch::new();
        let configs: Vec<(usize, u64, TimingModel)> = vec![
            (1, 7, exp_timing()),
            (
                32,
                1,
                TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 }),
            ),
            (
                4,
                3,
                exp_timing().with_failures(FailureModel::Random { per_op: 0.2 }),
            ),
            (16, 9, TimingModel::figure1(Noise::Geometric { p: 0.5 })),
            (2, 5, exp_timing()),
        ];
        for (n, seed, timing) in configs {
            let inputs = setup::half_and_half(n);
            let mut inst_a = setup::build(Algorithm::Lean, &inputs, seed);
            let mut inst_b = setup::build(Algorithm::Lean, &inputs, seed);
            let reused = run_noisy_scratch(
                &mut scratch,
                &mut inst_a,
                &timing,
                seed,
                Limits::run_to_completion(),
            );
            let fresh = run_noisy(&mut inst_b, &timing, seed, Limits::run_to_completion());
            assert_eq!(reused, fresh, "n={n} seed={seed}");
        }
    }

    /// The optimized engine must be **bit-for-bit identical** to the
    /// naive BinaryHeap baseline: same streams consumed in the same
    /// per-process order, same (unique) event order, so same reports.
    mod baseline_equivalence {
        use super::*;
        use crate::baseline::{run_noisy_baseline, run_noisy_with_baseline};

        fn assert_equivalent(
            alg: Algorithm,
            inputs: &[Bit],
            timing: &TimingModel,
            seed: u64,
            limits: Limits,
        ) {
            let mut inst_a = setup::build(alg, inputs, seed);
            let mut inst_b = setup::build(alg, inputs, seed);
            let optimized = run_noisy(&mut inst_a, timing, seed, limits);
            let naive = run_noisy_baseline(&mut inst_b, timing, seed, limits);
            assert_eq!(optimized, naive, "{alg:?} {timing:?} seed {seed}");
        }

        #[test]
        fn figure1_suite_all_seeds() {
            for (_, noise) in Noise::figure1_suite() {
                let timing = TimingModel::figure1(noise);
                for seed in 0..4 {
                    assert_equivalent(
                        Algorithm::Lean,
                        &setup::half_and_half(12),
                        &timing,
                        seed,
                        Limits::run_to_completion(),
                    );
                    assert_equivalent(
                        Algorithm::Lean,
                        &setup::half_and_half(40),
                        &timing,
                        seed,
                        Limits::first_decision(),
                    );
                }
            }
        }

        #[test]
        fn with_random_failures() {
            for per_op in [0.01, 0.2, 0.9] {
                let timing = exp_timing().with_failures(FailureModel::Random { per_op });
                for seed in 0..4 {
                    assert_equivalent(
                        Algorithm::Lean,
                        &setup::half_and_half(8),
                        &timing,
                        seed,
                        Limits::run_to_completion(),
                    );
                }
            }
        }

        #[test]
        fn with_per_kind_noise_and_delays() {
            // Per-kind distributions disable the batch path; adversarial
            // delays exercise DelayPolicy. Both must still match.
            let timing = TimingModel {
                start: StartTimes::dithered(),
                delay: DelayPolicy::Periodic {
                    period: 3,
                    extra: 0.5,
                },
                noise: nc_sched::OpNoise::per_kind(
                    Noise::Exponential { mean: 1.0 },
                    Noise::Uniform { lo: 0.0, hi: 2.0 },
                ),
                failures: FailureModel::None,
            };
            for seed in 0..4 {
                assert_equivalent(
                    Algorithm::Lean,
                    &setup::half_and_half(10),
                    &timing,
                    seed,
                    Limits::run_to_completion(),
                );
            }
        }

        #[test]
        fn all_algorithms() {
            for alg in [
                Algorithm::Lean,
                Algorithm::Skipping,
                Algorithm::Randomized,
                Algorithm::Bounded { r_max: 10 },
                Algorithm::Backup,
            ] {
                assert_equivalent(
                    alg,
                    &setup::half_and_half(6),
                    &exp_timing(),
                    42,
                    Limits::run_to_completion(),
                );
            }
        }

        #[test]
        fn op_cap_and_lockstep() {
            let timing = TimingModel {
                start: StartTimes::Simultaneous { dither: 1e-9 },
                delay: DelayPolicy::None,
                noise: nc_sched::OpNoise::same(Noise::Constant { value: 1.0 }),
                failures: FailureModel::None,
            };
            assert_equivalent(
                Algorithm::Lean,
                &setup::alternating(4),
                &timing,
                3,
                Limits::run_to_completion().with_max_ops(50_000),
            );
        }

        #[test]
        fn with_crash_adversary_and_history() {
            for seed in 0..4 {
                let inputs = setup::half_and_half(6);
                let mut inst_a = setup::build(Algorithm::Lean, &inputs, seed);
                let mut inst_b = setup::build(Algorithm::Lean, &inputs, seed);
                let mut killer_a = LeaderKiller::new(3, 2);
                let mut killer_b = LeaderKiller::new(3, 2);
                let mut hist_a = Vec::new();
                let mut hist_b = Vec::new();
                let optimized = run_noisy_with(
                    &mut inst_a,
                    &exp_timing(),
                    seed,
                    Limits::run_to_completion(),
                    Some(&mut killer_a),
                    Some(&mut hist_a),
                );
                let naive = run_noisy_with_baseline(
                    &mut inst_b,
                    &exp_timing(),
                    seed,
                    Limits::run_to_completion(),
                    Some(&mut killer_b),
                    Some(&mut hist_b),
                );
                assert_eq!(optimized, naive, "seed {seed}");
                assert_eq!(hist_a, hist_b, "histories diverged at seed {seed}");
            }
        }

        #[test]
        fn staggered_and_explicit_starts() {
            let staggered = exp_timing().with_start(StartTimes::Staggered {
                gap: 100.0,
                dither: 0.5,
            });
            let explicit = exp_timing().with_start(StartTimes::Explicit(vec![3.0, 0.0, 7.0]));
            for seed in 0..3 {
                assert_equivalent(
                    Algorithm::Lean,
                    &setup::half_and_half(5),
                    &staggered,
                    seed,
                    Limits::run_to_completion(),
                );
                assert_equivalent(
                    Algorithm::Lean,
                    &setup::alternating(3),
                    &explicit,
                    seed,
                    Limits::run_to_completion(),
                );
            }
        }
    }
}
