//! The timed, noisy-scheduling driver (§3.1, §9).
//!
//! Executes protocol operations in the order given by the noisy timing
//! model: process `i`'s `j`-th operation happens at
//! `S'_ij = Δ_i0 + Σ_{k≤j} (Δ_ik + X_ik + H_ik)`, with all the `Δ`, `X`,
//! `H` drawn from an [`nc_sched::TimingModel`]. An event queue with
//! deterministic tie-breaking realises the interleaving semantics; the
//! paper's zero-probability-of-simultaneity assumption is implemented by
//! ordering equal times by insertion sequence (reachable only through
//! f64 collisions, which the dithered start times make vanishingly
//! rare).
//!
//! The driver also applies adaptive crash adversaries (§10's non-random
//! failures) after every operation, and can record the full operation
//! history for the register-semantics checker.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;

use nc_core::{Protocol, Status};
use nc_memory::Event;
use nc_sched::adversary::{CrashAdversary, ProcView};
use nc_sched::rng::salts;
use nc_sched::{stream_rng, TimingModel};

use crate::report::{Limits, RunOutcome, RunReport};
use crate::setup::Instance;

/// An operation scheduled to occur at a simulated time.
///
/// Ordered for a min-heap on `(time, seq)`: earlier times first, ties
/// broken by insertion order for determinism.
#[derive(Debug)]
struct Scheduled {
    time: f64,
    seq: u64,
    pid: usize,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct ProcState {
    rng_noise: SmallRng,
    rng_failure: SmallRng,
    /// Time at which the previous operation completed (or the start
    /// time before the first operation).
    clock: f64,
    /// 1-based index of the next operation.
    next_op: u64,
    halted: bool,
    decided: bool,
}

/// Runs an instance under the noisy-scheduling model.
///
/// `seed` drives the noise, failure, and start-time streams (independent
/// of the instance's protocol-coin streams, which were fixed at build
/// time). Returns when all processes have decided or halted, when the
/// first decision happens (if `limits.stop_at_first_decision`), or when
/// the operation budget runs out.
pub fn run_noisy(
    inst: &mut Instance,
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
) -> RunReport {
    run_noisy_with(inst, timing, seed, limits, None, None)
}


/// [`run_noisy`] with an adaptive crash adversary and optional history
/// recording.
///
/// The crash adversary is consulted after every executed operation with
/// the current [`ProcView`]; returned pids halt immediately. If
/// `history` is `Some`, every executed operation is appended as an
/// [`Event`] (time, pid, op, observed value) suitable for
/// [`nc_memory::check_register_semantics_from`].
pub fn run_noisy_with(
    inst: &mut Instance,
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
    mut crash: Option<&mut dyn CrashAdversary>,
    mut history: Option<&mut Vec<Event>>,
) -> RunReport {
    let n = inst.procs.len();
    let mut queue: BinaryHeap<Scheduled> = BinaryHeap::with_capacity(n);
    let mut seq = 0u64;
    let mut states: Vec<ProcState> = (0..n)
        .map(|pid| {
            let mut rng_start = stream_rng(seed, pid as u64, salts::START);
            ProcState {
                rng_noise: stream_rng(seed, pid as u64, salts::NOISE),
                rng_failure: stream_rng(seed, pid as u64, salts::FAILURE),
                clock: timing.start_for(pid, &mut rng_start),
                next_op: 1,
                halted: false,
                decided: false,
            }
        })
        .collect();

    // Prime the queue with each process's first operation.
    for pid in 0..n {
        schedule_next(pid, &mut states, &mut queue, inst, timing, &mut seq);
    }

    let mut total_ops = 0u64;
    let mut sim_time = 0.0f64;
    let mut decision_rounds: Vec<Option<usize>> = vec![None; n];
    let mut op_counts: Vec<u64> = vec![0; n];
    let mut first_decision_round: Option<usize> = None;
    let mut first_decision_time: Option<f64> = None;
    let mut outcome: Option<RunOutcome> = None;
    // Processes that are neither decided nor halted; when it reaches 0
    // the run is over. (A counter, not a per-operation scan: the scan
    // would make the driver O(n) per event.)
    let mut live_undecided = states.iter().filter(|s| !s.halted).count();

    'main: while let Some(ev) = queue.pop() {
        let pid = ev.pid;
        if states[pid].halted || states[pid].decided {
            continue;
        }
        if total_ops >= limits.max_ops {
            outcome = Some(RunOutcome::OpCapReached);
            break;
        }
        sim_time = ev.time;

        // Execute exactly one operation of `pid`.
        let Status::Pending(op) = inst.procs[pid].status() else {
            // Defensive: decided processes are filtered above.
            continue;
        };
        let observed = inst.mem.exec(op);
        if let Some(h) = history.as_deref_mut() {
            h.push(Event {
                time: ev.time,
                pid: nc_memory::Pid::new(pid as u32),
                op,
                observed,
            });
        }
        inst.procs[pid].advance(observed);
        total_ops += 1;
        op_counts[pid] += 1;

        // Decision?
        if let Status::Decided(_) = inst.procs[pid].status() {
            states[pid].decided = true;
            live_undecided -= 1;
            let round = inst.procs[pid].round();
            decision_rounds[pid] = Some(round);
            if first_decision_round.is_none() {
                first_decision_round = Some(round);
                first_decision_time = Some(ev.time);
                if limits.stop_at_first_decision {
                    outcome = Some(RunOutcome::FirstDecision);
                    break 'main;
                }
            }
        } else {
            schedule_next(pid, &mut states, &mut queue, inst, timing, &mut seq);
            if states[pid].halted {
                live_undecided -= 1; // halted by H_ij while scheduling
            }
        }

        // Adaptive crashes (skipped entirely without an adversary: the
        // view construction is O(n) and would dominate large-n sweeps).
        if let Some(crash) = crash.as_deref_mut() {
            live_undecided -= apply_crashes(crash, inst, &mut states, &op_counts);
        }

        if live_undecided == 0 {
            break;
        }
    }

    // Runs that were not cut off ended because every process decided or
    // halted (directly, or by the event queue draining of halted procs).
    let outcome = outcome.unwrap_or_else(|| {
        if states.iter().any(|s| s.decided) {
            RunOutcome::AllDecided
        } else {
            RunOutcome::AllHalted
        }
    });

    RunReport {
        n,
        outcome,
        decisions: inst.procs.iter().map(|p| p.status().decision()).collect(),
        decision_rounds,
        ops: op_counts,
        halted: states.iter().map(|s| s.halted).collect(),
        first_decision_round,
        first_decision_time,
        total_ops,
        sim_time,
    }
}

fn schedule_next(
    pid: usize,
    states: &mut [ProcState],
    queue: &mut BinaryHeap<Scheduled>,
    inst: &Instance,
    timing: &TimingModel,
    seq: &mut u64,
) {
    let Status::Pending(op) = inst.procs[pid].status() else {
        return;
    };
    let state = &mut states[pid];
    let op_index = state.next_op;
    state.next_op += 1;
    let increment = {
        // Split borrows: the two RNG streams are distinct fields.
        let ProcState {
            rng_noise,
            rng_failure,
            ..
        } = &mut *state;
        timing.op_increment(pid, op_index, op.kind(), rng_noise, rng_failure)
    };
    match increment {
        None => {
            state.halted = true; // H_ij = ∞: the op never occurs
        }
        Some(inc) => {
            state.clock += inc;
            *seq += 1;
            queue.push(Scheduled {
                time: state.clock,
                seq: *seq,
                pid,
            });
        }
    }
}

/// Applies adaptive crashes; returns how many live undecided processes
/// were halted.
fn apply_crashes(
    crash: &mut dyn CrashAdversary,
    inst: &Instance,
    states: &mut [ProcState],
    op_counts: &[u64],
) -> usize {
    let enabled: Vec<bool> = states.iter().map(|s| !s.halted && !s.decided).collect();
    if !enabled.iter().any(|&e| e) {
        return 0;
    }
    let rounds: Vec<usize> = inst.procs.iter().map(|p| p.round()).collect();
    let victims = crash.crash_now(ProcView {
        enabled: &enabled,
        round: &rounds,
        steps: op_counts,
    });
    let mut newly_halted = 0;
    for v in victims {
        if v < states.len() && !states[v].halted && !states[v].decided {
            states[v].halted = true;
            newly_halted += 1;
        }
    }
    newly_halted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{self, Algorithm};
    use nc_memory::{check_register_semantics_from, Bit};
    use nc_sched::adversary::{CrashScript, LeaderKiller};
    use nc_sched::{DelayPolicy, FailureModel, Noise, StartTimes};
    use std::collections::HashMap;

    fn exp_timing() -> TimingModel {
        TimingModel::figure1(Noise::Exponential { mean: 1.0 })
    }

    #[test]
    fn solo_process_decides_at_round_2() {
        let mut inst = setup::build(Algorithm::Lean, &[Bit::One], 1);
        let report = run_noisy(&mut inst, &exp_timing(), 1, Limits::run_to_completion());
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        assert_eq!(report.decisions, vec![Some(Bit::One)]);
        assert_eq!(report.first_decision_round, Some(2));
        assert_eq!(report.total_ops, 8);
        assert!(report.sim_time > 0.0);
    }

    #[test]
    fn split_inputs_terminate_and_agree_across_distributions() {
        for (name, noise) in Noise::figure1_suite() {
            let timing = TimingModel::figure1(noise);
            for seed in 0..5 {
                let inputs = setup::half_and_half(8);
                let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
                let report = run_noisy(&mut inst, &timing, seed, Limits::run_to_completion());
                assert_eq!(report.outcome, RunOutcome::AllDecided, "{name} seed {seed}");
                report.check_safety(&inputs).unwrap();
            }
        }
    }

    #[test]
    fn constant_noise_lockstep_hits_op_cap() {
        // Degenerate (constant) noise + simultaneous starts = lockstep:
        // the run must NOT terminate (it exhausts its op budget). This is
        // the model assumption failing, as the paper predicts.
        let timing = TimingModel {
            start: StartTimes::Simultaneous { dither: 1e-9 },
            delay: DelayPolicy::None,
            noise: nc_sched::OpNoise::same(Noise::Constant { value: 1.0 }),
            failures: FailureModel::None,
        };
        let inputs = setup::alternating(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 3);
        let report = run_noisy(
            &mut inst,
            &timing,
            3,
            Limits::run_to_completion().with_max_ops(200_000),
        );
        assert_eq!(report.outcome, RunOutcome::OpCapReached);
        assert_eq!(report.decided_count(), 0);
    }

    #[test]
    fn first_decision_limit_stops_early() {
        let inputs = setup::half_and_half(16);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 5);
        let report = run_noisy(&mut inst, &exp_timing(), 5, Limits::first_decision());
        assert_eq!(report.outcome, RunOutcome::FirstDecision);
        assert_eq!(report.decided_count(), 1);
        assert!(report.first_decision_round.is_some());
    }

    #[test]
    fn random_failures_halt_everyone_eventually() {
        // h = 0.5 per op: all 4 processes die almost immediately.
        let timing = exp_timing().with_failures(FailureModel::Random { per_op: 0.9 });
        let inputs = setup::alternating(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 9);
        let report = run_noisy(&mut inst, &timing, 9, Limits::run_to_completion());
        // Either all died undecided, or a lucky survivor decided first.
        assert!(
            report.outcome == RunOutcome::AllHalted || report.outcome == RunOutcome::AllDecided,
            "{:?}",
            report.outcome
        );
        assert!(report.halted.iter().filter(|&&h| h).count() >= 1);
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn mild_random_failures_still_decide() {
        let timing = exp_timing().with_failures(FailureModel::Random { per_op: 0.01 });
        for seed in 0..5 {
            let inputs = setup::half_and_half(6);
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let report = run_noisy(&mut inst, &timing, seed, Limits::run_to_completion());
            report.check_safety(&inputs).unwrap();
            assert!(
                report.decided_count() > 0 || report.outcome == RunOutcome::AllHalted,
                "seed {seed}: {report}"
            );
        }
    }

    #[test]
    fn leader_killer_crashes_do_not_break_safety() {
        for seed in 0..5 {
            let inputs = setup::half_and_half(6);
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let mut killer = LeaderKiller::new(3, 2);
            let report = run_noisy_with(
                &mut inst,
                &exp_timing(),
                seed,
                Limits::run_to_completion(),
                Some(&mut killer),
                None,
            );
            report.check_safety(&inputs).unwrap();
            assert!(report.decided_count() + report.halted.iter().filter(|&&h| h).count() > 0);
        }
    }

    #[test]
    fn scripted_crash_halts_the_right_process() {
        let inputs = setup::half_and_half(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 2);
        let mut crash = CrashScript::new(vec![(0, 1)]); // kill P0 after 1 op
        let report = run_noisy_with(
            &mut inst,
            &exp_timing(),
            2,
            Limits::run_to_completion(),
            Some(&mut crash),
            None,
        );
        assert!(report.halted[0]);
        assert_eq!(report.ops[0], 1);
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn recorded_history_satisfies_register_semantics() {
        let inputs = setup::half_and_half(6);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 8);
        // Sentinels were installed before the run; seed the checker with
        // them as initial state.
        let layout = nc_memory::RaceLayout::at_base(0);
        let mut initial = HashMap::new();
        initial.insert(layout.slot(Bit::Zero, 0), 1);
        initial.insert(layout.slot(Bit::One, 0), 1);
        let mut history = Vec::new();
        let report = run_noisy_with(
            &mut inst,
            &exp_timing(),
            8,
            Limits::run_to_completion(),
            None,
            Some(&mut history),
        );
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        assert_eq!(history.len(), report.total_ops as usize);
        check_register_semantics_from(&history, &initial)
            .expect("engine must implement the interleaving model");
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let inputs = setup::half_and_half(10);
        let run = |seed: u64| {
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let r = run_noisy(&mut inst, &exp_timing(), seed, Limits::run_to_completion());
            (r.first_decision_round, r.total_ops, r.decisions.clone())
        };
        assert_eq!(run(1234), run(1234));
        // And different seeds genuinely vary the execution.
        let a = run(1);
        let b = run(2);
        assert!(a != b, "distinct seeds produced identical runs (unlikely)");
    }

    #[test]
    fn all_algorithms_run_under_noise() {
        for alg in [
            Algorithm::Lean,
            Algorithm::Skipping,
            Algorithm::Randomized,
            Algorithm::Bounded { r_max: 10 },
            Algorithm::Backup,
        ] {
            let inputs = setup::half_and_half(4);
            let mut inst = setup::build(alg, &inputs, 77);
            let report = run_noisy(&mut inst, &exp_timing(), 77, Limits::run_to_completion());
            assert_eq!(report.outcome, RunOutcome::AllDecided, "{alg:?}");
            report.check_safety(&inputs).unwrap();
        }
    }

    #[test]
    fn staggered_starts_let_the_early_bird_win() {
        // One process starts at 0, others 1000 time units later: the
        // early process decides alone at round 2 (adaptivity: work
        // depends on contention, not n).
        let timing = exp_timing().with_start(StartTimes::Staggered {
            gap: 1000.0,
            dither: 0.0,
        });
        let inputs = vec![Bit::One, Bit::Zero, Bit::Zero];
        let mut inst = setup::build(Algorithm::Lean, &inputs, 4);
        let report = run_noisy(&mut inst, &timing, 4, Limits::run_to_completion());
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        assert_eq!(report.decisions[0], Some(Bit::One));
        assert_eq!(report.decision_rounds[0], Some(2));
        assert_eq!(report.agreement_value(), Some(Bit::One));
        report.check_safety(&inputs).unwrap();
    }
}
