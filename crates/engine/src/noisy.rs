//! The timed, noisy-scheduling driver (§3.1, §9) — optimized engine.
//!
//! Executes protocol operations in the order given by the noisy timing
//! model: process `i`'s `j`-th operation happens at
//! `S'_ij = Δ_i0 + Σ_{k≤j} (Δ_ik + X_ik + H_ik)`, with all the `Δ`, `X`,
//! `H` drawn from an [`nc_sched::TimingModel`]. An event queue with
//! deterministic tie-breaking realises the interleaving semantics; the
//! paper's zero-probability-of-simultaneity assumption is implemented by
//! ordering equal times by insertion sequence (reachable only through
//! f64 collisions, which the dithered start times make vanishingly
//! rare).
//!
//! The driver also applies adaptive crash adversaries (§10's non-random
//! failures) after every operation, and can record the full operation
//! history for the register-semantics checker.
//!
//! # Throughput design
//!
//! Figure 1 alone needs up to 10 000 trials per point, so this loop is
//! the workspace's hottest code. Five optimizations over the naive
//! driver (kept verbatim in [`crate::baseline`] and pinned equal by the
//! equivalence tests):
//!
//! 1. **Swappable event queue behind a size heuristic** — the common
//!    case pops one event and pushes exactly one successor for the same
//!    process (the "hold" operation). The loops are generic over
//!    [`nc_sched::SimQueue`]; [`nc_sched::QueuePolicy::Auto`] picks the
//!    4-ary tournament-select heap ([`nc_sched::EventQueue`]) below
//!    [`nc_sched::select::TREE_MIN_N`] processes and the branchless
//!    pid-indexed tournament tree ([`nc_sched::EventTree`]) above it.
//!    The event order is total, so the choice cannot change results.
//! 2. **Struct-of-arrays process state (`ProcSoA`)** — the per-event
//!    scalars (event-time accumulator, operation index, noise-buffer
//!    cursor, halt/decide flags) are packed into one 32-byte `Hot`
//!    lane per process, an 8× denser stride than the old 256-byte
//!    `ProcState`; the cold state (cached pending op, RNG streams, the
//!    pre-drawn noise buffer) lives in separate arrays touched only on
//!    refills and in the general loop. Random-order execution over
//!    `hot` touches one cache line per two processes instead of one
//!    line per process.
//! 3. **Reusable [`EngineScratch`]** — per-process state, RNG streams,
//!    both queues, and the bookkeeping vectors are allocated once and
//!    re-seeded across trials, so a sweep's steady state allocates only
//!    its `RunReport`s.
//! 4. **Batched noise draws** — when reads and writes share one noise
//!    distribution (every Figure 1 configuration), each process draws
//!    up to [`NOISE_BATCH`] delays per RNG-dispatch instead of one,
//!    hoisting the distribution match and parameter validation out of
//!    the per-event path. Each process owns its stream, so batching
//!    cannot change any consumed value.
//! 5. **Software-pipelined trial interleaving ([`drive_noisy_batch`])** —
//!    a worker advances K independent trials in lockstep, one event
//!    each per turn. The trials share no state, so their queue walks
//!    and protocol steps form K independent dependency chains the core
//!    can overlap: while one lane's queue pop waits on a cache miss,
//!    the other lanes' work fills the pipeline. Per-trial results are
//!    bit-identical to sequential execution by construction.
//! 6. **Batched execution core** — when every protocol in the instance
//!    exposes its [`nc_core::LeanHot`] lane, the driver pops
//!    *micro-batches* of up to K schedule-safe events per queue
//!    round-trip instead of one: a horizon rule proves which prefix of
//!    the queue must execute before any in-flight successor can
//!    intervene, the K packed state machines then step back-to-back
//!    (branchless table-driven round advance, direct dense-plane
//!    addressing when the store exposes a [`nc_memory::RacePlane`]),
//!    and the successors scatter back in one re-key
//!    ([`nc_sched::SimQueue::insert_batch`]). Batching changes only how
//!    the schedule is *driven*, never the schedule itself — see
//!    `step_batch` for the argument, and the batched differential
//!    matrix in `tests/soa_equivalence.rs` for the pin. K is
//!    [`EngineScratch::set_event_batch`] / `Sim::event_batch`; the
//!    default is [`DEFAULT_EVENT_BATCH`] = 1 — per-event — because on
//!    the reference VM the selector's pop + insert queue traffic beats
//!    the hold re-key only from n ≳ 8000 (measured K-selection guidance
//!    in the constant's docs; under `Auto`, batching also moves the
//!    queue cut to [`nc_sched::select::TREE_MIN_N_BATCHED`]).
//!
//! The common-case loop (`loop_fast`, taken when there is no crash
//! adversary, no history recording, and no random failures) executes
//! each event through the fused [`Protocol::step_status`] — one
//! (monomorphizable) call per event instead of the naive driver's four
//! virtual dispatches — and carries no per-event `Option` checks at
//! all. Everything else takes `loop_general`. Equal inputs produce
//! bit-identical reports on either path, with either queue, at any
//! pipeline width.

use rand::rngs::SmallRng;

use nc_core::{LeanHot, Protocol, Status};
use nc_memory::{Addr, Bit, Event, MemStore, Op, OpKind, RacePlane, Word};
use nc_sched::adversary::{CrashAdversary, ProcView};
use nc_sched::queue::Event as QueuedEvent;
use nc_sched::rng::salts;
use nc_sched::select::{QueueKind, QueuePolicy, SimQueue};
use nc_sched::{stream_rng, EventQueue, EventTree, FailureModel, Noise, TimingModel};

use crate::report::{Limits, RunOutcome, RunReport};
use crate::setup::Instance;

/// Noise samples drawn per batched RNG refill (per process).
///
/// Figure 1's first-decision runs execute ~20-40 operations per process,
/// so 16 amortizes the dispatch well without over-drawing much for
/// processes that stop early.
pub const NOISE_BATCH: usize = 16;

/// Events each pipeline lane executes before [`drive_noisy_batch`]
/// rotates to the next lane.
///
/// The granularity trade: rotating every event maximizes chain overlap
/// but destroys the per-lane locality (queue top in L1, protocol state
/// in registers) that the sequential loop exploits — measured 30-45%
/// *slower* than sequential on the reference VM. Bursts amortize the
/// lane switch and keep intra-lane locality while the lanes' working
/// sets still interleave in cache over the run.
pub const PIPELINE_BURST: u32 = 64;

/// Default micro-batch size K for the batched execution core
/// ([`EngineScratch::set_event_batch`], `Sim::event_batch`): **1** —
/// batching is off by default, a measured choice.
///
/// The batched selector must replace the hold re-key (one in-place
/// root replacement per event) with a pop + insert per event, and on
/// the reference VM that queue traffic costs more than the batch's
/// straight-line execution wins back: `bench_engine --probe` measures
/// forced K ∈ {2..64} at 15-21M events/s against ~25M for the
/// per-event loop at n = 100, on every queue and both memory planes.
///
/// K > 1 starts paying once heap holds get deep enough that pop +
/// insert stops being the bottleneck: at n = 8192 the probe measures
/// the batched heap ~17% *faster* than the per-event heap (11.5M vs
/// 9.8M events/s at K = 16). Guidance: keep the default below a few
/// thousand processes; try K = 4..16 at n ≳ 8000 (with
/// [`QueuePolicy::Auto`], batching also re-biases the queue cut — see
/// [`nc_sched::select::TREE_MIN_N_BATCHED`]). The batch is cut early
/// whenever the schedule requires it (`step_batch`'s horizon rule), so
/// K is an upper bound, not a promise, and any K produces bit-identical
/// reports (pinned by the `soa_equivalence` batched matrix).
pub const DEFAULT_EVENT_BATCH: usize = 1;

/// The per-event scalars of one process, packed to 32 bytes so two
/// processes share a cache line (the old array-of-structs `ProcState`
/// strode 256 bytes per process — see the module docs).
///
/// `repr(C)` pins the layout; the const assertion below keeps the size
/// honest if fields change.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct Hot {
    /// Time at which the previous operation completed (or the start
    /// time before the first operation) — the next-event key
    /// accumulator.
    clock: f64,
    /// 1-based index of the next operation.
    next_op: u64,
    /// Operations executed so far (reported as `RunReport::ops`).
    ops: u64,
    /// Next unconsumed index into this process's noise-buffer stripe;
    /// `buf_pos == buf_len` means empty.
    buf_pos: u8,
    /// Valid prefix length of the stripe.
    buf_len: u8,
    /// Next refill size: ramps 2 → 4 → … → [`NOISE_BATCH`], so processes
    /// that execute only a few operations (every process, in a
    /// first-decision run at large `n`) don't pay for a full batch up
    /// front.
    next_fill: u8,
    halted: bool,
    decided: bool,
}

const _: () = assert!(
    std::mem::size_of::<Hot>() == 32,
    "Hot must stay 2-per-cache-line"
);

// The u8 cursor fields cap the tunable batch size: `buf_len` holds up
// to NOISE_BATCH and the refill ramp computes `next_fill * 2` before
// clamping, so doubling the largest value must still fit in u8.
const _: () = assert!(
    NOISE_BATCH * 2 <= u8::MAX as usize,
    "NOISE_BATCH must fit the u8 cursor fields (including the 2x refill ramp)"
);

impl Hot {
    /// Fresh per-trial state with the given start time.
    #[inline]
    fn new(clock: f64) -> Self {
        Hot {
            clock,
            next_op: 1,
            ops: 0,
            buf_pos: 0,
            buf_len: 0,
            next_fill: 2,
            halted: false,
            decided: false,
        }
    }
}

/// Struct-of-arrays process state: the [`Hot`] per-event lanes plus the
/// cold arrays (cached pending ops, RNG streams, pre-drawn noise
/// stripes) that only refills and the general loop touch.
///
/// All arrays are indexed by pid; `noise_buf` is flattened with a
/// [`NOISE_BATCH`] stride per process.
#[derive(Default)]
struct ProcSoA {
    hot: Vec<Hot>,
    /// The operation each process's queued event will execute. Valid
    /// whenever the process has an event in the queue; caching it here
    /// saves a virtual `status()` call per event in the general loop.
    pending: Vec<Op>,
    rng_noise: Vec<SmallRng>,
    rng_failure: Vec<SmallRng>,
    /// Pre-drawn noise delays; process `pid`'s stripe is
    /// `noise_buf[pid * NOISE_BATCH ..][..NOISE_BATCH]`, valid between
    /// its `buf_pos` and `buf_len` cursors.
    noise_buf: Vec<f64>,
}

impl ProcSoA {
    /// Re-seeds every array for a fresh `n`-process trial.
    ///
    /// When the arrays already hold `n` lanes they are re-seeded in
    /// place (the common sweep case), skipping reconstruction of the
    /// noise stripes; the failure stream is only re-derived when the
    /// timing model can actually consume it. Neither shortcut is
    /// observable: streams are keyed by `(seed, pid, salt)` alone, and
    /// stripe contents are dead until the cursor fields say otherwise.
    fn reset(&mut self, n: usize, seed: u64, timing: &TimingModel) {
        let need_failure_rng = !matches!(timing.failures, FailureModel::None);
        if self.hot.len() == n {
            for pid in 0..n {
                let mut rng_start = stream_rng(seed, pid as u64, salts::START);
                self.hot[pid] = Hot::new(timing.start_for(pid, &mut rng_start));
                self.rng_noise[pid] = stream_rng(seed, pid as u64, salts::NOISE);
                if need_failure_rng {
                    self.rng_failure[pid] = stream_rng(seed, pid as u64, salts::FAILURE);
                }
            }
        } else {
            self.hot.clear();
            self.pending.clear();
            self.rng_noise.clear();
            self.rng_failure.clear();
            self.hot.reserve(n);
            for pid in 0..n {
                let mut rng_start = stream_rng(seed, pid as u64, salts::START);
                self.hot
                    .push(Hot::new(timing.start_for(pid, &mut rng_start)));
                // Placeholder until the priming pass caches the real op.
                self.pending.push(Op::Read(nc_memory::Addr::new(0)));
                self.rng_noise
                    .push(stream_rng(seed, pid as u64, salts::NOISE));
                self.rng_failure
                    .push(stream_rng(seed, pid as u64, salts::FAILURE));
            }
            self.noise_buf.clear();
            self.noise_buf.resize(n * NOISE_BATCH, 0.0);
        }
    }

    /// Next batched noise delay for `pid`, refilling from the process's
    /// own stream when its stripe is spent.
    #[inline]
    fn next_noise(&mut self, pid: usize, noise: &Noise) -> f64 {
        let h = &mut self.hot[pid];
        let base = pid * NOISE_BATCH;
        if h.buf_pos == h.buf_len {
            let fill = h.next_fill as usize;
            noise.fill(
                &mut self.rng_noise[pid],
                &mut self.noise_buf[base..base + fill],
            );
            h.buf_pos = 0;
            h.buf_len = fill as u8;
            h.next_fill = (h.next_fill * 2).min(NOISE_BATCH as u8);
        }
        let x = self.noise_buf[base + h.buf_pos as usize];
        h.buf_pos += 1;
        x
    }

    /// The fast path's hold bookkeeping fused into one call: counts the
    /// executed op, consumes the next batched noise delay, advances the
    /// process clock, and returns it. One `hot[pid]` bounds check on
    /// the non-refill path (the disjoint-field borrows of the stripe
    /// and RNG arrays cost nothing) — this is the per-event state
    /// touch, so it's kept deliberately tight.
    #[inline]
    fn hold_advance(&mut self, pid: usize, timing: &TimingModel, noise: &Noise) -> f64 {
        let base = pid * NOISE_BATCH;
        let h = &mut self.hot[pid];
        h.ops += 1;
        let op_index = h.next_op;
        h.next_op += 1;
        if h.buf_pos == h.buf_len {
            let fill = h.next_fill as usize;
            noise.fill(
                &mut self.rng_noise[pid],
                &mut self.noise_buf[base..base + fill],
            );
            h.buf_pos = 0;
            h.buf_len = fill as u8;
            h.next_fill = (h.next_fill * 2).min(NOISE_BATCH as u8);
        }
        let x = self.noise_buf[base + h.buf_pos as usize];
        h.buf_pos += 1;
        h.clock += timing.delay.delta(pid, op_index) + x;
        h.clock
    }

    /// The time [`ProcSoA::hold_advance`] *would* move `pid`'s clock to,
    /// **without** consuming anything — the batched selector's horizon
    /// probe.
    ///
    /// Refills the noise stripe exactly like [`ProcSoA::next_noise`]
    /// when it is empty (so the value peeked here is the value a later
    /// `hold_advance` consumes), but leaves the cursor, the operation
    /// index, and the clock untouched. Refilling early is unobservable:
    /// each process owns its stream, so *when* a stripe refills cannot
    /// change which values it yields.
    #[inline]
    fn peek_succ_time(&mut self, pid: usize, timing: &TimingModel, noise: &Noise) -> f64 {
        let base = pid * NOISE_BATCH;
        let h = &mut self.hot[pid];
        if h.buf_pos == h.buf_len {
            let fill = h.next_fill as usize;
            noise.fill(
                &mut self.rng_noise[pid],
                &mut self.noise_buf[base..base + fill],
            );
            h.buf_pos = 0;
            h.buf_len = fill as u8;
            h.next_fill = (h.next_fill * 2).min(NOISE_BATCH as u8);
        }
        let x = self.noise_buf[base + h.buf_pos as usize];
        // Same shape as `hold_advance`'s `clock += delta + x` (delta and
        // x are summed first), so the peeked time is bit-identical to
        // the successor time the execution will schedule.
        h.clock + (timing.delay.delta(pid, h.next_op) + x)
    }

    /// Commits the hold bookkeeping for a successor whose time was
    /// already computed by [`ProcSoA::peek_succ_time`] in this batch:
    /// counts the op, consumes the peeked noise value (the peek
    /// guaranteed the stripe cursor is in range), and jumps the clock
    /// to the peeked time. Bit-identical to [`ProcSoA::hold_advance`]
    /// — the peek evaluated the same `clock + (delta + x)` expression —
    /// minus the recomputation of the delay and the noise sample.
    #[inline]
    fn hold_commit(&mut self, pid: usize, succ_time: f64) {
        let h = &mut self.hot[pid];
        h.ops += 1;
        h.next_op += 1;
        h.buf_pos += 1;
        h.clock = succ_time;
    }
}

/// Reusable engine working memory: the struct-of-arrays process state
/// (with its RNG streams), both event-queue implementations, and the
/// per-run bookkeeping vectors.
///
/// Constructing these per trial is pure allocator churn at sweep scale;
/// a [`crate::sim::SimRun`] keeps one `EngineScratch` (and a
/// [`crate::sim::TrialSet`] keeps one per worker, or one per pipeline
/// lane) and reuses it for every trial. Reuse never leaks state between
/// trials: every field is re-seeded from the trial's own seed.
///
/// The queue implementation is chosen per run by the scratch's
/// [`QueuePolicy`] (default [`QueuePolicy::Auto`]: heap at small `n`,
/// branchless tree at large `n`); force one with
/// [`EngineScratch::with_queue`] for differential tests and ablations
/// (the builder exposes this as [`crate::sim::Sim::queue_policy`]).
/// The choice never affects results.
pub struct EngineScratch {
    soa: ProcSoA,
    heap: EventQueue,
    tree: EventTree,
    policy: QueuePolicy,
    decision_rounds: Vec<Option<usize>>,
    /// Micro-batch size K for the batched execution core (see the
    /// module docs); 1 forces the legacy per-event fast loop.
    batch: usize,
    /// Checked-out per-process [`LeanHot`] lanes while the batched loop
    /// owns them (empty between runs).
    lean_hot: Vec<LeanHot>,
    /// Staging for the events accepted into the current micro-batch.
    stage_events: Vec<QueuedEvent>,
    /// Staging for the successor events the batch scatters back.
    stage_succs: Vec<QueuedEvent>,
    /// Staging for the successor times peeked during batch selection
    /// (parallel to `stage_events`), so execution commits the already
    /// computed time instead of re-deriving delay + noise.
    stage_succ_times: Vec<f64>,
}

impl Default for EngineScratch {
    fn default() -> Self {
        EngineScratch {
            soa: ProcSoA::default(),
            heap: EventQueue::new(),
            tree: EventTree::new(),
            policy: QueuePolicy::default(),
            decision_rounds: Vec::new(),
            batch: DEFAULT_EVENT_BATCH,
            lean_hot: Vec::new(),
            stage_events: Vec::new(),
            stage_succs: Vec::new(),
            stage_succ_times: Vec::new(),
        }
    }
}

impl std::fmt::Debug for EngineScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineScratch")
            .field("capacity", &self.soa.hot.capacity())
            .field("policy", &self.policy)
            .finish()
    }
}

impl EngineScratch {
    /// An empty scratch with the default ([`QueuePolicy::Auto`]) queue
    /// selection; buffers grow to the first trial's size and are reused
    /// from then on.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty scratch with a fixed queue policy (differential tests,
    /// ablations, hand-tuned deployments).
    pub fn with_queue(policy: QueuePolicy) -> Self {
        EngineScratch {
            policy,
            ..Self::default()
        }
    }

    /// The queue policy this scratch applies per run.
    pub fn queue_policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Replaces the queue policy (takes effect on the next run).
    pub fn set_queue_policy(&mut self, policy: QueuePolicy) {
        self.policy = policy;
    }

    /// The micro-batch size K the batched execution core targets
    /// (default [`DEFAULT_EVENT_BATCH`]).
    pub fn event_batch(&self) -> usize {
        self.batch
    }

    /// Sets the micro-batch size K (clamped to at least 1; `1` disables
    /// batching and takes the legacy per-event fast loop). Purely a
    /// performance knob: every K produces bit-identical reports, pinned
    /// by the batched equivalence suite.
    pub fn set_event_batch(&mut self, k: usize) {
        self.batch = k.max(1);
    }

    /// Re-seeds every buffer for a fresh `n`-process trial.
    fn reset(&mut self, n: usize, seed: u64, timing: &TimingModel) {
        self.soa.reset(n, seed, timing);
        self.decision_rounds.clear();
        self.decision_rounds.resize(n, None);
    }
}

/// The fully general single-trial driver beneath the [`crate::sim`]
/// builder API: runs one instance under the noisy-scheduling model with
/// scratch reuse, an optional crash adversary, and optional history
/// recording.
///
/// `seed` drives the noise, failure, and start-time streams (independent
/// of the instance's protocol-coin streams, which were fixed at build
/// time). The crash adversary, if any, is consulted after every executed
/// operation with the current [`ProcView`]; returned pids halt
/// immediately. If `history` is `Some`, every executed operation is
/// appended as an [`Event`] (time, pid, op, observed value) suitable for
/// [`nc_memory::check_register_semantics_from`]. Returns when all
/// processes have decided or halted, when the first decision happens (if
/// `limits.stop_at_first_decision`), or when the operation budget runs
/// out.
///
/// Prefer [`crate::sim::Sim`] — this is the internal the builder (and
/// the equivalence suites pinning it) drive; it is exported so those
/// suites can compare the two layers directly.
pub fn drive_noisy<M: MemStore, P: Protocol<M>>(
    scratch: &mut EngineScratch,
    inst: &mut Instance<P, M>,
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
    crash: Option<&mut dyn CrashAdversary>,
    history: Option<&mut Vec<Event>>,
) -> RunReport {
    let plan = BatchPlan::Fixed(scratch.batch);
    drive_noisy_inner(scratch, inst, timing, seed, limits, crash, history, plan)
}

/// [`drive_noisy`] with a caller-supplied micro-batch plan: `plan` is
/// consulted before every micro-batch and returns the target K for that
/// batch (clamped to at least 1).
///
/// This is the batched core's adversarial test hook — the equivalence
/// suite drives runs with *randomly varying* K and checks the reports
/// are bit-identical to sequential execution. It is not a tuning
/// interface; use [`EngineScratch::set_event_batch`] (or
/// `Sim::event_batch`) for that.
pub fn drive_noisy_with_batch_plan<M: MemStore, P: Protocol<M>>(
    scratch: &mut EngineScratch,
    inst: &mut Instance<P, M>,
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
    plan: &mut dyn FnMut() -> usize,
) -> RunReport {
    drive_noisy_inner(
        scratch,
        inst,
        timing,
        seed,
        limits,
        None,
        None,
        BatchPlan::Dyn(plan),
    )
}

#[allow(clippy::too_many_arguments)]
fn drive_noisy_inner<M: MemStore, P: Protocol<M>>(
    scratch: &mut EngineScratch,
    inst: &mut Instance<P, M>,
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
    crash: Option<&mut dyn CrashAdversary>,
    history: Option<&mut Vec<Event>>,
    mut plan: BatchPlan<'_>,
) -> RunReport {
    let n = inst.procs.len();
    scratch.reset(n, seed, timing);
    // Batched draws need one distribution for all op kinds; with
    // per-kind distributions the next draw depends on the next op's
    // kind, so fall back to per-event sampling.
    let batch: Option<Noise> = timing.noise.uniform_kind().copied();

    // Dispatch: the overwhelmingly common sweep configuration — no
    // crash adversary, no history recording, no random failures, one
    // noise distribution for both op kinds — gets a specialized loop
    // with no per-event Option checks, no failure draws, and no
    // stale-event filtering (without crashes or failures, a queued
    // process can only leave the queue by deciding, so no event is ever
    // stale). Everything else takes the general loop. Both produce
    // bit-identical results (pinned by the equivalence tests), with
    // either queue implementation.
    let fast_eligible =
        crash.is_none() && history.is_none() && matches!(timing.failures, FailureModel::None);
    let EngineScratch {
        soa,
        heap,
        tree,
        policy,
        decision_rounds,
        lean_hot,
        stage_events,
        stage_succs,
        stage_succ_times,
        ..
    } = scratch;
    let mut stage = Stage {
        lean_hot,
        events: stage_events,
        succs: stage_succs,
        succ_times: stage_succ_times,
    };
    let out = match policy.kind_for_batch(n, plan.queue_bias()) {
        QueueKind::Heap => {
            heap.prepare(n);
            drive(
                soa,
                decision_rounds,
                &mut stage,
                heap,
                inst,
                timing,
                batch,
                fast_eligible,
                limits,
                crash,
                history,
                &mut plan,
            )
        }
        QueueKind::Tree => {
            tree.prepare(n);
            drive(
                soa,
                decision_rounds,
                &mut stage,
                tree,
                inst,
                timing,
                batch,
                fast_eligible,
                limits,
                crash,
                history,
                &mut plan,
            )
        }
    };
    assemble_report(soa, decision_rounds, inst, out)
}

/// Runs K independent trials in lockstep on one thread — the
/// software-pipelined trial interleave (see the module docs) behind
/// [`crate::sim::TrialSet`]'s `lanes` knob.
///
/// Lane `i` runs `insts[i]` with `seeds[i]` through `scratches[i]`;
/// every turn advances each unfinished lane by exactly one event, so
/// the K lanes' dependency chains overlap in the core's pipeline.
/// Returns the lanes' reports in order. Each report is **bit-identical**
/// to what [`drive_noisy`] would produce for that lane alone — lanes
/// share no state, so interleaving cannot affect results (pinned by the
/// equivalence suite).
///
/// Configurations outside the fast path (per-kind noise distributions
/// or random halting failures) fall back to running the lanes
/// sequentially through the general driver, preserving the same
/// per-lane results.
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn drive_noisy_batch<M: MemStore, P: Protocol<M>>(
    scratches: &mut [EngineScratch],
    insts: &mut [Instance<P, M>],
    timing: &TimingModel,
    seeds: &[u64],
    limits: Limits,
) -> Vec<RunReport> {
    let k = insts.len();
    assert_eq!(scratches.len(), k, "one scratch per lane");
    assert_eq!(seeds.len(), k, "one seed per lane");
    let fast_eligible = matches!(timing.failures, FailureModel::None);
    let Some(noise) = timing
        .noise
        .uniform_kind()
        .copied()
        .filter(|_| fast_eligible)
    else {
        return scratches
            .iter_mut()
            .zip(insts.iter_mut())
            .zip(seeds)
            .map(|((s, i), &seed)| drive_noisy(s, i, timing, seed, limits, None, None))
            .collect();
    };

    struct Lane {
        kind: QueueKind,
        seq: u64,
        out: LoopOut,
        done: bool,
        /// Whether this lane runs the batched core (lean-hot protocols
        /// with a batch size above 1) instead of per-event stepping.
        hot: bool,
    }
    let mut lanes: Vec<Lane> = Vec::with_capacity(k);
    for i in 0..k {
        let n = insts[i].procs.len();
        scratches[i].reset(n, seeds[i], timing);
        let kind = scratches[i].policy.kind_for_batch(n, scratches[i].batch);
        let EngineScratch {
            soa,
            heap,
            tree,
            lean_hot,
            batch,
            ..
        } = &mut scratches[i];
        let seq = match kind {
            QueueKind::Heap => {
                heap.prepare(n);
                prime(soa, heap, &mut insts[i], timing, Some(&noise))
            }
            QueueKind::Tree => {
                tree.prepare(n);
                prime(soa, tree, &mut insts[i], timing, Some(&noise))
            }
        };
        let hot = *batch > 1 && load_lean_hot(lean_hot, &insts[i]);
        lanes.push(Lane {
            kind,
            seq,
            out: LoopOut::default(),
            done: false,
            hot,
        });
    }

    // Lockstep advance: a burst of events per unfinished lane per
    // turn. Burst granularity keeps each lane's queue top and protocol
    // state hot across consecutive events (single-event interleave
    // measured ~30-45% slower on the reference VM — switching lanes
    // every event throws away exactly the locality the sequential loop
    // lives on), while still rotating lanes often enough that their
    // independent miss chains overlap in the memory subsystem. The
    // per-lane queue-kind branch is perfectly predictable (it never
    // changes within a run).
    let mut live = k;
    while live > 0 {
        for i in 0..k {
            let lane = &mut lanes[i];
            if lane.done {
                continue;
            }
            let EngineScratch {
                soa,
                heap,
                tree,
                decision_rounds,
                lean_hot,
                stage_events,
                stage_succs,
                stage_succ_times,
                batch,
                ..
            } = &mut scratches[i];
            let mut more = true;
            if lane.hot {
                // Batched lane: burst granularity is measured in
                // executed events (ops delta), so batched and per-event
                // lanes rotate at the same cadence.
                let kmax = *batch;
                let mut stage = Stage {
                    lean_hot,
                    events: stage_events,
                    succs: stage_succs,
                    succ_times: stage_succ_times,
                };
                let start_ops = lane.out.total_ops;
                while more && lane.out.total_ops - start_ops < u64::from(PIPELINE_BURST) {
                    more = match lane.kind {
                        QueueKind::Heap => step_batch(
                            soa,
                            decision_rounds,
                            &mut stage,
                            heap,
                            &mut insts[i],
                            timing,
                            &noise,
                            &mut lane.seq,
                            limits,
                            kmax,
                            &mut lane.out,
                        ),
                        QueueKind::Tree => step_batch(
                            soa,
                            decision_rounds,
                            &mut stage,
                            tree,
                            &mut insts[i],
                            timing,
                            &noise,
                            &mut lane.seq,
                            limits,
                            kmax,
                            &mut lane.out,
                        ),
                    };
                }
            } else {
                for _ in 0..PIPELINE_BURST {
                    more = match lane.kind {
                        QueueKind::Heap => step_fast(
                            soa,
                            decision_rounds,
                            heap,
                            &mut insts[i],
                            timing,
                            &noise,
                            &mut lane.seq,
                            limits,
                            &mut lane.out,
                        ),
                        QueueKind::Tree => step_fast(
                            soa,
                            decision_rounds,
                            tree,
                            &mut insts[i],
                            timing,
                            &noise,
                            &mut lane.seq,
                            limits,
                            &mut lane.out,
                        ),
                    };
                    if !more {
                        break;
                    }
                }
            }
            if !more {
                if lane.hot {
                    restore_lean_hot(lean_hot, &mut insts[i]);
                }
                lane.done = true;
                live -= 1;
            }
        }
    }

    (0..k)
        .map(|i| {
            assemble_report(
                &scratches[i].soa,
                &scratches[i].decision_rounds,
                &insts[i],
                std::mem::take(&mut lanes[i].out),
            )
        })
        .collect()
}

/// What a driver loop observed; the caller folds it into a `RunReport`.
#[derive(Default)]
struct LoopOut {
    total_ops: u64,
    sim_time: f64,
    first_decision_round: Option<usize>,
    first_decision_time: Option<f64>,
    outcome: Option<RunOutcome>,
}

/// How the driver picks the target micro-batch size K before each
/// micro-batch of the batched loop.
enum BatchPlan<'a> {
    /// The same K every batch ([`EngineScratch::event_batch`]); `1`
    /// disables batching and takes the legacy per-event loop.
    Fixed(usize),
    /// Ask a closure before every batch — the equivalence suite's
    /// random-K adversary ([`drive_noisy_with_batch_plan`]).
    Dyn(&'a mut dyn FnMut() -> usize),
}

impl BatchPlan<'_> {
    /// Target size for the next micro-batch (at least 1).
    #[inline]
    fn next(&mut self) -> usize {
        match self {
            BatchPlan::Fixed(k) => *k,
            BatchPlan::Dyn(f) => f().max(1),
        }
    }

    /// Whether this plan ever asks for batches above size 1.
    fn wants_batching(&self) -> bool {
        !matches!(self, BatchPlan::Fixed(0 | 1))
    }

    /// The batch size [`QueuePolicy::kind_for_batch`] should bias the
    /// auto queue cut with. A dynamic plan counts as batched — the
    /// choice only affects speed, never results, so any bias is sound.
    fn queue_bias(&self) -> usize {
        match self {
            BatchPlan::Fixed(k) => *k,
            BatchPlan::Dyn(_) => 2,
        }
    }
}

/// The batched core's staging buffers (owned by [`EngineScratch`],
/// borrowed for one run), grouped so the loop plumbing stays readable.
struct Stage<'a> {
    /// Checked-out per-process [`LeanHot`] lanes (pid-indexed).
    lean_hot: &'a mut Vec<LeanHot>,
    /// Events accepted into the current micro-batch, in pop order.
    events: &'a mut Vec<QueuedEvent>,
    /// Successor events to scatter back, in execution order (the last
    /// event's successor is held out for the re-key shortcut).
    succs: &'a mut Vec<QueuedEvent>,
    /// Peeked successor time per accepted event (parallel to `events`):
    /// the exact time [`ProcSoA::hold_commit`] jumps the clock to.
    succ_times: &'a mut Vec<f64>,
}

/// Checks out every process's [`LeanHot`] lane into `out` (pid-indexed).
/// Returns `false` — leaving `out` in an unspecified state — if any
/// process is not a lean-consensus instance, in which case the caller
/// must fall back to the generic loop.
fn load_lean_hot<M: MemStore, P: Protocol<M>>(
    out: &mut Vec<LeanHot>,
    inst: &Instance<P, M>,
) -> bool {
    out.clear();
    out.reserve(inst.procs.len());
    for p in &inst.procs {
        match p.lean_hot() {
            Some(h) => out.push(h),
            None => return false,
        }
    }
    true
}

/// Writes the checked-out [`LeanHot`] lanes back into the protocol
/// objects, making them indistinguishable from having been stepped in
/// place. Must run before [`assemble_report`] (which reads the procs'
/// decisions and rounds).
fn restore_lean_hot<M: MemStore, P: Protocol<M>>(lean_hot: &[LeanHot], inst: &mut Instance<P, M>) {
    for (p, h) in inst.procs.iter_mut().zip(lean_hot) {
        p.lean_hot_restore(*h);
    }
}

/// Primes the queue with each process's first operation; returns the
/// last used sequence number.
fn prime<M: MemStore, P: Protocol<M>, Q: SimQueue>(
    soa: &mut ProcSoA,
    queue: &mut Q,
    inst: &mut Instance<P, M>,
    timing: &TimingModel,
    batch: Option<&Noise>,
) -> u64 {
    let mut seq = 0u64;
    for pid in 0..inst.procs.len() {
        let Status::Pending(op) = inst.procs[pid].status() else {
            continue;
        };
        soa.pending[pid] = op;
        match draw_increment(soa, pid, timing, batch, op.kind()) {
            None => soa.hot[pid].halted = true, // H_i1 = ∞: the op never occurs
            Some(inc) => {
                let h = &mut soa.hot[pid];
                h.clock += inc;
                seq += 1;
                queue.insert(QueuedEvent::new(h.clock, seq, pid as u32));
            }
        }
    }
    seq
}

/// Primes the queue and runs the appropriate loop to completion.
#[allow(clippy::too_many_arguments)]
fn drive<M: MemStore, P: Protocol<M>, Q: SimQueue>(
    soa: &mut ProcSoA,
    decision_rounds: &mut [Option<usize>],
    stage: &mut Stage<'_>,
    queue: &mut Q,
    inst: &mut Instance<P, M>,
    timing: &TimingModel,
    batch: Option<Noise>,
    fast_eligible: bool,
    limits: Limits,
    crash: Option<&mut dyn CrashAdversary>,
    history: Option<&mut Vec<Event>>,
    plan: &mut BatchPlan<'_>,
) -> LoopOut {
    let seq = prime(soa, queue, inst, timing, batch.as_ref());
    match (fast_eligible, batch) {
        (true, Some(noise)) => {
            // The batched core additionally needs the protocols to
            // expose their lean hot lanes (only `LeanConsensus` does);
            // anything else keeps the per-event fast loop.
            if plan.wants_batching() && load_lean_hot(stage.lean_hot, inst) {
                let out = loop_batched(
                    soa,
                    decision_rounds,
                    stage,
                    queue,
                    inst,
                    timing,
                    &noise,
                    seq,
                    limits,
                    plan,
                );
                restore_lean_hot(stage.lean_hot, inst);
                out
            } else {
                loop_fast(
                    soa,
                    decision_rounds,
                    queue,
                    inst,
                    timing,
                    &noise,
                    seq,
                    limits,
                )
            }
        }
        (_, batch) => loop_general(
            soa,
            decision_rounds,
            queue,
            inst,
            timing,
            batch.as_ref(),
            seq,
            limits,
            crash,
            history,
        ),
    }
}

/// Folds a finished run into a `RunReport`.
fn assemble_report<M: MemStore, P: Protocol<M>>(
    soa: &ProcSoA,
    decision_rounds: &[Option<usize>],
    inst: &Instance<P, M>,
    out: LoopOut,
) -> RunReport {
    // Runs that were not cut off ended because every process decided or
    // halted (directly, or by the event queue draining of halted procs).
    let outcome = out.outcome.unwrap_or_else(|| {
        if soa.hot.iter().any(|h| h.decided) {
            RunOutcome::AllDecided
        } else {
            RunOutcome::AllHalted
        }
    });
    RunReport {
        n: inst.procs.len(),
        outcome,
        decisions: inst.procs.iter().map(|p| p.status().decision()).collect(),
        decision_rounds: decision_rounds.to_vec(),
        ops: soa.hot.iter().map(|h| h.ops).collect(),
        halted: soa.hot.iter().map(|h| h.halted).collect(),
        first_decision_round: out.first_decision_round,
        first_decision_time: out.first_decision_time,
        total_ops: out.total_ops,
        sim_time: out.sim_time,
        max_round: inst.procs.iter().map(|p| p.round()).max().unwrap_or(0),
    }
}

/// The specialized hot loop: no failures, no crash adversary, no
/// history, batched single-distribution noise.
#[allow(clippy::too_many_arguments)]
fn loop_fast<M: MemStore, P: Protocol<M>, Q: SimQueue>(
    soa: &mut ProcSoA,
    decision_rounds: &mut [Option<usize>],
    queue: &mut Q,
    inst: &mut Instance<P, M>,
    timing: &TimingModel,
    noise: &Noise,
    mut seq: u64,
    limits: Limits,
) -> LoopOut {
    let mut out = LoopOut::default();
    while step_fast(
        soa,
        decision_rounds,
        queue,
        inst,
        timing,
        noise,
        &mut seq,
        limits,
        &mut out,
    ) {}
    out
}

/// One fast-path event: execute the earliest queued operation and
/// reschedule or retire its process. Returns `false` when the run is
/// over (queue empty, op cap, or first-decision cutoff).
///
/// This is the unit the pipelined batch runner interleaves across
/// lanes; [`loop_fast`] is exactly this in a `while`, so sequential and
/// interleaved execution are the same code path.
#[allow(clippy::too_many_arguments)]
#[inline]
fn step_fast<M: MemStore, P: Protocol<M>, Q: SimQueue>(
    soa: &mut ProcSoA,
    decision_rounds: &mut [Option<usize>],
    queue: &mut Q,
    inst: &mut Instance<P, M>,
    timing: &TimingModel,
    noise: &Noise,
    seq: &mut u64,
    limits: Limits,
    out: &mut LoopOut,
) -> bool {
    let Some(top) = queue.first() else {
        return false;
    };
    if out.total_ops >= limits.max_ops {
        out.outcome = Some(RunOutcome::OpCapReached);
        return false;
    }
    let pid = top.pid() as usize;
    let time = top.time();
    out.sim_time = time;

    // Execute exactly one operation of `pid`, fused: the protocol
    // performs its own pending operation against the memory and hands
    // back the next status in one (monomorphized) call.
    let status = inst.procs[pid].step_status(&mut inst.mem);
    out.total_ops += 1;

    match status {
        Status::Decided(_) => {
            queue.pop_first();
            let h = &mut soa.hot[pid];
            h.ops += 1;
            h.decided = true;
            let round = inst.procs[pid].round();
            decision_rounds[pid] = Some(round);
            if out.first_decision_round.is_none() {
                out.first_decision_round = Some(round);
                out.first_decision_time = Some(time);
                if limits.stop_at_first_decision {
                    out.outcome = Some(RunOutcome::FirstDecision);
                    return false;
                }
            }
        }
        Status::Pending(_) => {
            // The hold operation: reschedule the same process in place.
            // (`pending` stays stale here on purpose: the fused step
            // never reads it, and the noise is batched so the next op's
            // kind is not needed either.)
            let clock = soa.hold_advance(pid, timing, noise);
            *seq += 1;
            queue.reschedule_first(QueuedEvent::new(clock, *seq, pid as u32));
        }
    }
    true
}

/// The batched hot loop: same eligibility as [`loop_fast`] plus
/// lean-hot protocols, executing micro-batches of up to K events per
/// queue round-trip (see [`step_batch`]).
#[allow(clippy::too_many_arguments)]
fn loop_batched<M: MemStore, P: Protocol<M>, Q: SimQueue>(
    soa: &mut ProcSoA,
    decision_rounds: &mut [Option<usize>],
    stage: &mut Stage<'_>,
    queue: &mut Q,
    inst: &mut Instance<P, M>,
    timing: &TimingModel,
    noise: &Noise,
    mut seq: u64,
    limits: Limits,
    plan: &mut BatchPlan<'_>,
) -> LoopOut {
    let mut out = LoopOut::default();
    while step_batch(
        soa,
        decision_rounds,
        stage,
        queue,
        inst,
        timing,
        noise,
        &mut seq,
        limits,
        plan.next(),
        &mut out,
    ) {}
    out
}

/// One micro-batch: select up to `kmax` schedule-safe events off the
/// queue, execute them back-to-back against the memory, then scatter
/// the successors back. Returns `false` when the run is over.
///
/// # Why this cannot change the executed schedule
///
/// Sequential execution pops the global minimum event, executes it,
/// inserts the (single) successor, and repeats. Batching is sound iff
/// the accepted events would have been popped in exactly this order
/// with the successors present. The selector maintains a **horizon**:
/// the minimum, over events already accepted, of the exact time each
/// one's successor will be scheduled at ([`ProcSoA::peek_succ_time`] —
/// exact because the hold invariant gives every pid at most one queued
/// event, so each accepted pid executes exactly once per batch and its
/// successor consumes precisely the peeked noise value). The next
/// queued event is accepted only while its time is `<= horizon`; the
/// tie (`==`) is safe because a queued event always carries a smaller
/// sequence number than any not-yet-created successor, so the total
/// event order breaks the tie in the queued event's favor. Peeking may
/// refill a process's noise stripe early, which is unobservable: the
/// streams are per-process, so refill timing cannot change the values
/// any process consumes.
///
/// Decisions mid-batch only shorten the horizon (the decided process's
/// phantom successor never materializes), which can only cut the batch
/// early — never reorder it. On a first-decision cutoff the queue is
/// abandoned un-scattered: queue contents are re-prepared per trial and
/// never observed by reports.
#[allow(clippy::too_many_arguments)]
#[inline]
fn step_batch<M: MemStore, P: Protocol<M>, Q: SimQueue>(
    soa: &mut ProcSoA,
    decision_rounds: &mut [Option<usize>],
    stage: &mut Stage<'_>,
    queue: &mut Q,
    inst: &mut Instance<P, M>,
    timing: &TimingModel,
    noise: &Noise,
    seq: &mut u64,
    limits: Limits,
    kmax: usize,
    out: &mut LoopOut,
) -> bool {
    let Some(first) = queue.first() else {
        return false;
    };
    if out.total_ops >= limits.max_ops {
        out.outcome = Some(RunOutcome::OpCapReached);
        return false;
    }
    // Clamp the batch to the remaining op budget so the cap fires on
    // exactly the same event as the sequential loop.
    let budget = usize::try_from(limits.max_ops - out.total_ops).unwrap_or(usize::MAX);
    let kmax = kmax.max(1).min(budget);

    // --- Select: gather a schedule-safe run of events. -------------
    stage.events.clear();
    stage.succs.clear();
    stage.succ_times.clear();
    let mut addr_hi = 0usize;
    // Whether the most recently accepted event is still sitting in the
    // queue (peeked but not popped) — drives the scatter shortcut.
    let mut last_in_queue = true;

    stage.events.push(first);
    let pid = first.pid() as usize;
    let mut horizon = soa.peek_succ_time(pid, timing, noise);
    stage.succ_times.push(horizon);
    addr_hi = addr_hi.max(stage.lean_hot[pid].op_addr().0);

    while stage.events.len() < kmax {
        // Pop the accepted event to expose the next candidate.
        queue.pop_first();
        last_in_queue = false;
        match queue.first() {
            Some(next) if next.time() <= horizon => {
                stage.events.push(next);
                last_in_queue = true;
                let pid = next.pid() as usize;
                let t = soa.peek_succ_time(pid, timing, noise);
                stage.succ_times.push(t);
                horizon = horizon.min(t);
                addr_hi = addr_hi.max(stage.lean_hot[pid].op_addr().0);
            }
            _ => break,
        }
    }

    // --- Execute: step the K state machines back-to-back. ----------
    // Memory operations run strictly in event order either way; the
    // plane lane merely replaces K dispatched `read`/`write` calls with
    // direct indexed access (plus one deferred counter flush), and is
    // taken only when every address the batch can touch is inside the
    // dense prefix. (`addr_hi` is exact: each pid executes once, at the
    // address staged above.)
    let use_plane = match inst.mem.race_plane() {
        Some(plane) => addr_hi < plane.words.len(),
        None => false,
    };
    let outcome = if use_plane {
        let RacePlane { words, hi, ops } = inst.mem.race_plane().expect("checked above");
        let mut io = PlaneIo {
            words,
            hi: 0,
            ops: 0,
        };
        let r = exec_batch(soa, decision_rounds, stage, seq, limits, &mut io, out);
        // Flush unconditionally — the executed prefix of a stopped
        // batch still happened.
        *hi = (*hi).max(io.hi);
        *ops += io.ops;
        r
    } else {
        let mut io = MemIo(&mut inst.mem);
        exec_batch(soa, decision_rounds, stage, seq, limits, &mut io, out)
    };

    if outcome.stopped {
        // First-decision cutoff: the queue is abandoned (see above).
        return false;
    }

    // --- Scatter: re-key the queue with the successors. ------------
    queue.insert_batch(stage.succs);
    // The last accepted event is still the queue minimum if present:
    // every scattered successor's time is >= horizon >= its time, and
    // the time tie goes to it (smaller sequence number). So its slot
    // can absorb its own successor via the hold re-key.
    match (outcome.last_succ, last_in_queue) {
        (Some(s), true) => queue.reschedule_first(s),
        (Some(s), false) => queue.insert(s),
        (None, true) => {
            // Last event decided; retire its queue entry.
            queue.pop_first();
        }
        (None, false) => {}
    }
    true
}

/// What [`exec_batch`] tells [`step_batch`] about how the batch ended.
struct StepOutcome {
    /// The run hit its first-decision cutoff mid-batch; abandon the
    /// queue without scattering.
    stopped: bool,
    /// The last accepted event's successor, held out of the scatter
    /// staging so it can reuse the hold re-key (`None` if the last
    /// event's process decided).
    last_succ: Option<QueuedEvent>,
}

/// The memory lane [`exec_batch`] is monomorphized over: per-op
/// [`MemStore`] dispatch, or direct dense-plane access.
///
/// Writes always store [`Bit::One`] — the only batched protocol is lean
/// consensus, whose every write marks a racing-array cell (pinned by
/// `LeanHot`'s addressing tests).
trait BatchIo {
    fn read(&mut self, addr: usize) -> Word;
    fn write(&mut self, addr: usize);
}

/// Per-op lane: every access goes through the store's own methods
/// (counts ops, grows, etc. exactly like the sequential loop).
struct MemIo<'a, M: MemStore>(&'a mut M);

impl<M: MemStore> BatchIo for MemIo<'_, M> {
    #[inline]
    fn read(&mut self, addr: usize) -> Word {
        self.0.read(Addr::new(addr))
    }

    #[inline]
    fn write(&mut self, addr: usize) {
        self.0.write(Addr::new(addr), Bit::One.word());
    }
}

/// Dense-plane lane: direct indexed access to the store's backing
/// words, with the op count and footprint high-water mark accumulated
/// locally and flushed once per batch (per the [`RacePlane`] contract —
/// the flushed state is exactly what K per-op calls would have left).
struct PlaneIo<'a> {
    words: &'a mut [Word],
    hi: usize,
    ops: u64,
}

impl BatchIo for PlaneIo<'_> {
    #[inline]
    fn read(&mut self, addr: usize) -> Word {
        self.ops += 1;
        self.words[addr]
    }

    #[inline]
    fn write(&mut self, addr: usize) {
        self.ops += 1;
        self.words[addr] = Bit::One.word();
        self.hi = self.hi.max(addr + 1);
    }
}

/// Executes the staged micro-batch: for each accepted event in order,
/// one lean-hot protocol step against `io`, then the same bookkeeping
/// as [`step_fast`] (decision accounting or hold advance + successor
/// staging).
#[allow(clippy::too_many_arguments)]
#[inline]
fn exec_batch<IO: BatchIo>(
    soa: &mut ProcSoA,
    decision_rounds: &mut [Option<usize>],
    stage: &mut Stage<'_>,
    seq: &mut u64,
    limits: Limits,
    io: &mut IO,
    out: &mut LoopOut,
) -> StepOutcome {
    let mut last_succ = None;
    let last = stage.events.len() - 1;
    for (i, ev) in stage.events.iter().enumerate() {
        let pid = ev.pid() as usize;
        out.sim_time = ev.time();
        let lh = &mut stage.lean_hot[pid];
        let (addr, is_write) = lh.op_addr();
        let value = if is_write {
            io.write(addr);
            0
        } else {
            io.read(addr)
        };
        let decided = lh.advance(value);
        out.total_ops += 1;

        if decided {
            let h = &mut soa.hot[pid];
            h.ops += 1;
            h.decided = true;
            let round = lh.round();
            decision_rounds[pid] = Some(round);
            if out.first_decision_round.is_none() {
                out.first_decision_round = Some(round);
                out.first_decision_time = Some(ev.time());
                if limits.stop_at_first_decision {
                    out.outcome = Some(RunOutcome::FirstDecision);
                    return StepOutcome {
                        stopped: true,
                        last_succ: None,
                    };
                }
            }
        } else {
            let clock = stage.succ_times[i];
            soa.hold_commit(pid, clock);
            *seq += 1;
            let s = QueuedEvent::new(clock, *seq, pid as u32);
            if i == last {
                last_succ = Some(s);
            } else {
                stage.succs.push(s);
            }
        }
    }
    StepOutcome {
        stopped: false,
        last_succ,
    }
}

/// The fully general loop: random failures, adaptive crash adversaries,
/// history recording, per-kind noise.
#[allow(clippy::too_many_arguments)]
fn loop_general<M: MemStore, P: Protocol<M>, Q: SimQueue>(
    soa: &mut ProcSoA,
    decision_rounds: &mut [Option<usize>],
    queue: &mut Q,
    inst: &mut Instance<P, M>,
    timing: &TimingModel,
    batch: Option<&Noise>,
    mut seq: u64,
    limits: Limits,
    mut crash: Option<&mut dyn CrashAdversary>,
    mut history: Option<&mut Vec<Event>>,
) -> LoopOut {
    let mut out = LoopOut::default();
    // Processes that are neither decided nor halted; when it reaches 0
    // the run is over. (A counter, not a per-operation scan: the scan
    // would make the driver O(n) per event.)
    let mut live_undecided = soa.hot.iter().filter(|h| !h.halted).count();

    'main: while let Some(top) = queue.first() {
        let pid = top.pid() as usize;
        let time = top.time();
        {
            // Stale events exist only under a crash adversary (a queued
            // process halted out from under its event); drain them.
            let h = &soa.hot[pid];
            if h.halted || h.decided {
                queue.pop_first();
                continue;
            }
        }
        if out.total_ops >= limits.max_ops {
            out.outcome = Some(RunOutcome::OpCapReached);
            break;
        }
        out.sim_time = time;

        // Execute exactly one operation of `pid`.
        let op = soa.pending[pid];
        let observed = inst.mem.exec(op);
        if let Some(h) = history.as_deref_mut() {
            h.push(Event {
                time,
                pid: nc_memory::Pid::new(pid as u32),
                op,
                observed,
            });
        }
        let status = inst.procs[pid].advance_status(observed);
        out.total_ops += 1;
        soa.hot[pid].ops += 1;

        match status {
            Status::Decided(_) => {
                queue.pop_first();
                soa.hot[pid].decided = true;
                live_undecided -= 1;
                let round = inst.procs[pid].round();
                decision_rounds[pid] = Some(round);
                if out.first_decision_round.is_none() {
                    out.first_decision_round = Some(round);
                    out.first_decision_time = Some(time);
                    if limits.stop_at_first_decision {
                        out.outcome = Some(RunOutcome::FirstDecision);
                        break 'main;
                    }
                }
            }
            Status::Pending(next_op) => {
                soa.pending[pid] = next_op;
                match draw_increment(soa, pid, timing, batch, next_op.kind()) {
                    None => {
                        soa.hot[pid].halted = true; // H_ij = ∞: the op never occurs
                        queue.pop_first();
                        live_undecided -= 1;
                    }
                    Some(inc) => {
                        let h = &mut soa.hot[pid];
                        h.clock += inc;
                        seq += 1;
                        queue.reschedule_first(QueuedEvent::new(h.clock, seq, pid as u32));
                    }
                }
            }
        }

        // Adaptive crashes (skipped entirely without an adversary: the
        // view construction is O(n) and would dominate large-n sweeps).
        if let Some(crash) = crash.as_deref_mut() {
            live_undecided -= apply_crashes(crash, inst, soa);
        }

        if live_undecided == 0 {
            break;
        }
    }
    out
}

/// Draws `Δ_ij + X_ij + H_ij` for the next operation of process `pid`,
/// consuming the failure stream first and the noise stream second
/// (matching the naive driver's stream order exactly). `None` means the
/// process halts (`H_ij = ∞`).
#[inline]
fn draw_increment(
    soa: &mut ProcSoA,
    pid: usize,
    timing: &TimingModel,
    batch: Option<&Noise>,
    kind: OpKind,
) -> Option<f64> {
    let op_index = soa.hot[pid].next_op;
    soa.hot[pid].next_op += 1;
    if timing.failures.halts(&mut soa.rng_failure[pid]) {
        return None;
    }
    let x = match batch {
        Some(noise) => soa.next_noise(pid, noise),
        None => timing.noise.sample(kind, &mut soa.rng_noise[pid]),
    };
    Some(timing.delay.delta(pid, op_index) + x)
}

/// Applies adaptive crashes; returns how many live undecided processes
/// were halted.
fn apply_crashes<M: MemStore, P: Protocol<M>>(
    crash: &mut dyn CrashAdversary,
    inst: &Instance<P, M>,
    soa: &mut ProcSoA,
) -> usize {
    let enabled: Vec<bool> = soa.hot.iter().map(|h| !h.halted && !h.decided).collect();
    if !enabled.iter().any(|&e| e) {
        return 0;
    }
    let rounds: Vec<usize> = inst.procs.iter().map(|p| p.round()).collect();
    let steps: Vec<u64> = soa.hot.iter().map(|h| h.ops).collect();
    let victims = crash.crash_now(ProcView {
        enabled: &enabled,
        round: &rounds,
        steps: &steps,
    });
    let mut newly_halted = 0;
    for v in victims {
        if v < soa.hot.len() && !soa.hot[v].halted && !soa.hot[v].decided {
            soa.hot[v].halted = true;
            newly_halted += 1;
        }
    }
    newly_halted
}

#[cfg(test)]
// These unit tests pin the drive_* internals directly (they stay
// bit-identical to the builder, which tests/sim_equivalence.rs checks
// from the other side).
mod tests {
    use super::*;
    use crate::setup::{self, Algorithm};
    use nc_memory::{check_register_semantics_from, Bit};
    use nc_sched::adversary::{CrashScript, LeaderKiller};
    use nc_sched::{DelayPolicy, FailureModel, Noise, StartTimes};
    use std::collections::HashMap;

    fn exp_timing() -> TimingModel {
        TimingModel::figure1(Noise::Exponential { mean: 1.0 })
    }

    /// [`drive_noisy`] with a throwaway scratch — the shape most tests
    /// here want.
    fn run_noisy<P: Protocol>(
        inst: &mut Instance<P>,
        timing: &TimingModel,
        seed: u64,
        limits: Limits,
    ) -> RunReport {
        let mut scratch = EngineScratch::new();
        drive_noisy(&mut scratch, inst, timing, seed, limits, None, None)
    }

    /// [`drive_noisy`] with a caller-held scratch, no adversary.
    fn run_noisy_scratch<P: Protocol>(
        scratch: &mut EngineScratch,
        inst: &mut Instance<P>,
        timing: &TimingModel,
        seed: u64,
        limits: Limits,
    ) -> RunReport {
        drive_noisy(scratch, inst, timing, seed, limits, None, None)
    }

    /// [`drive_noisy`] with a throwaway scratch plus adversary/history.
    fn run_noisy_with<P: Protocol>(
        inst: &mut Instance<P>,
        timing: &TimingModel,
        seed: u64,
        limits: Limits,
        crash: Option<&mut dyn CrashAdversary>,
        history: Option<&mut Vec<Event>>,
    ) -> RunReport {
        let mut scratch = EngineScratch::new();
        drive_noisy(&mut scratch, inst, timing, seed, limits, crash, history)
    }

    #[test]
    fn solo_process_decides_at_round_2() {
        let mut inst = setup::build(Algorithm::Lean, &[Bit::One], 1);
        let report = run_noisy(&mut inst, &exp_timing(), 1, Limits::run_to_completion());
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        assert_eq!(report.decisions, vec![Some(Bit::One)]);
        assert_eq!(report.first_decision_round, Some(2));
        assert_eq!(report.total_ops, 8);
        assert!(report.sim_time > 0.0);
    }

    #[test]
    fn split_inputs_terminate_and_agree_across_distributions() {
        for (name, noise) in Noise::figure1_suite() {
            let timing = TimingModel::figure1(noise);
            for seed in 0..5 {
                let inputs = setup::half_and_half(8);
                let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
                let report = run_noisy(&mut inst, &timing, seed, Limits::run_to_completion());
                assert_eq!(report.outcome, RunOutcome::AllDecided, "{name} seed {seed}");
                report.check_safety(&inputs).unwrap();
            }
        }
    }

    #[test]
    fn constant_noise_lockstep_hits_op_cap() {
        // Degenerate (constant) noise + simultaneous starts = lockstep:
        // the run must NOT terminate (it exhausts its op budget). This is
        // the model assumption failing, as the paper predicts.
        let timing = TimingModel {
            start: StartTimes::Simultaneous { dither: 1e-9 },
            delay: DelayPolicy::None,
            noise: nc_sched::OpNoise::same(Noise::Constant { value: 1.0 }),
            failures: FailureModel::None,
        };
        let inputs = setup::alternating(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 3);
        let report = run_noisy(
            &mut inst,
            &timing,
            3,
            Limits::run_to_completion().with_max_ops(200_000),
        );
        assert_eq!(report.outcome, RunOutcome::OpCapReached);
        assert_eq!(report.decided_count(), 0);
    }

    #[test]
    fn first_decision_limit_stops_early() {
        let inputs = setup::half_and_half(16);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 5);
        let report = run_noisy(&mut inst, &exp_timing(), 5, Limits::first_decision());
        assert_eq!(report.outcome, RunOutcome::FirstDecision);
        assert_eq!(report.decided_count(), 1);
        assert!(report.first_decision_round.is_some());
    }

    #[test]
    fn random_failures_halt_everyone_eventually() {
        // h = 0.9 per op: all 4 processes die almost immediately.
        let timing = exp_timing().with_failures(FailureModel::Random { per_op: 0.9 });
        let inputs = setup::alternating(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 9);
        let report = run_noisy(&mut inst, &timing, 9, Limits::run_to_completion());
        // Either all died undecided, or a lucky survivor decided first.
        assert!(
            report.outcome == RunOutcome::AllHalted || report.outcome == RunOutcome::AllDecided,
            "{:?}",
            report.outcome
        );
        assert!(report.halted.iter().filter(|&&h| h).count() >= 1);
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn mild_random_failures_still_decide() {
        let timing = exp_timing().with_failures(FailureModel::Random { per_op: 0.01 });
        for seed in 0..5 {
            let inputs = setup::half_and_half(6);
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let report = run_noisy(&mut inst, &timing, seed, Limits::run_to_completion());
            report.check_safety(&inputs).unwrap();
            assert!(
                report.decided_count() > 0 || report.outcome == RunOutcome::AllHalted,
                "seed {seed}: {report}"
            );
        }
    }

    #[test]
    fn leader_killer_crashes_do_not_break_safety() {
        for seed in 0..5 {
            let inputs = setup::half_and_half(6);
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let mut killer = LeaderKiller::new(3, 2);
            let report = run_noisy_with(
                &mut inst,
                &exp_timing(),
                seed,
                Limits::run_to_completion(),
                Some(&mut killer),
                None,
            );
            report.check_safety(&inputs).unwrap();
            assert!(report.decided_count() + report.halted.iter().filter(|&&h| h).count() > 0);
        }
    }

    #[test]
    fn scripted_crash_halts_the_right_process() {
        let inputs = setup::half_and_half(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 2);
        let mut crash = CrashScript::new(vec![(0, 1)]); // kill P0 after 1 op
        let report = run_noisy_with(
            &mut inst,
            &exp_timing(),
            2,
            Limits::run_to_completion(),
            Some(&mut crash),
            None,
        );
        assert!(report.halted[0]);
        assert_eq!(report.ops[0], 1);
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn recorded_history_satisfies_register_semantics() {
        let inputs = setup::half_and_half(6);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 8);
        // Sentinels were installed before the run; seed the checker with
        // them as initial state.
        let layout = nc_memory::RaceLayout::at_base(0);
        let mut initial = HashMap::new();
        initial.insert(layout.slot(Bit::Zero, 0), 1);
        initial.insert(layout.slot(Bit::One, 0), 1);
        let mut history = Vec::new();
        let report = run_noisy_with(
            &mut inst,
            &exp_timing(),
            8,
            Limits::run_to_completion(),
            None,
            Some(&mut history),
        );
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        assert_eq!(history.len(), report.total_ops as usize);
        check_register_semantics_from(&history, &initial)
            .expect("engine must implement the interleaving model");
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let inputs = setup::half_and_half(10);
        let run = |seed: u64| {
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let r = run_noisy(&mut inst, &exp_timing(), seed, Limits::run_to_completion());
            (r.first_decision_round, r.total_ops, r.decisions.clone())
        };
        assert_eq!(run(1234), run(1234));
        // And different seeds genuinely vary the execution.
        let a = run(1);
        let b = run(2);
        assert!(a != b, "distinct seeds produced identical runs (unlikely)");
    }

    #[test]
    fn all_algorithms_run_under_noise() {
        for alg in [
            Algorithm::Lean,
            Algorithm::Skipping,
            Algorithm::Randomized,
            Algorithm::Bounded { r_max: 10 },
            Algorithm::Backup,
        ] {
            let inputs = setup::half_and_half(4);
            let mut inst = setup::build(alg, &inputs, 77);
            let report = run_noisy(&mut inst, &exp_timing(), 77, Limits::run_to_completion());
            assert_eq!(report.outcome, RunOutcome::AllDecided, "{alg:?}");
            report.check_safety(&inputs).unwrap();
        }
    }

    #[test]
    fn staggered_starts_let_the_early_bird_win() {
        // One process starts at 0, others 1000 time units later: the
        // early process decides alone at round 2 (adaptivity: work
        // depends on contention, not n).
        let timing = exp_timing().with_start(StartTimes::Staggered {
            gap: 1000.0,
            dither: 0.0,
        });
        let inputs = vec![Bit::One, Bit::Zero, Bit::Zero];
        let mut inst = setup::build(Algorithm::Lean, &inputs, 4);
        let report = run_noisy(&mut inst, &timing, 4, Limits::run_to_completion());
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        assert_eq!(report.decisions[0], Some(Bit::One));
        assert_eq!(report.decision_rounds[0], Some(2));
        assert_eq!(report.agreement_value(), Some(Bit::One));
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn scratch_reuse_is_stateless_across_trials() {
        // Interleave very different trials through one scratch and check
        // each against a fresh-scratch run.
        let mut scratch = EngineScratch::new();
        let configs: Vec<(usize, u64, TimingModel)> = vec![
            (1, 7, exp_timing()),
            (
                32,
                1,
                TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 }),
            ),
            (
                4,
                3,
                exp_timing().with_failures(FailureModel::Random { per_op: 0.2 }),
            ),
            (16, 9, TimingModel::figure1(Noise::Geometric { p: 0.5 })),
            (2, 5, exp_timing()),
        ];
        for (n, seed, timing) in configs {
            let inputs = setup::half_and_half(n);
            let mut inst_a = setup::build(Algorithm::Lean, &inputs, seed);
            let mut inst_b = setup::build(Algorithm::Lean, &inputs, seed);
            let reused = run_noisy_scratch(
                &mut scratch,
                &mut inst_a,
                &timing,
                seed,
                Limits::run_to_completion(),
            );
            let fresh = run_noisy(&mut inst_b, &timing, seed, Limits::run_to_completion());
            assert_eq!(reused, fresh, "n={n} seed={seed}");
        }
    }

    #[test]
    fn queue_choice_does_not_change_reports() {
        // Heap, tree, and auto must produce the identical report for
        // identical trials (the event order is total).
        for (n, seed) in [(1usize, 1u64), (7, 2), (40, 3), (129, 4)] {
            let inputs = setup::half_and_half(n);
            let mut reports = Vec::new();
            for policy in [QueuePolicy::Heap, QueuePolicy::Tree, QueuePolicy::Auto] {
                let mut scratch = EngineScratch::with_queue(policy);
                let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
                reports.push(run_noisy_scratch(
                    &mut scratch,
                    &mut inst,
                    &exp_timing(),
                    seed,
                    Limits::run_to_completion(),
                ));
            }
            assert_eq!(reports[0], reports[1], "heap vs tree, n={n}");
            assert_eq!(reports[0], reports[2], "heap vs auto, n={n}");
        }
    }

    #[test]
    fn one_scratch_switches_queue_policies_between_trials() {
        let inputs = setup::half_and_half(12);
        let mut scratch = EngineScratch::new();
        let mut reference = None;
        for policy in [QueuePolicy::Tree, QueuePolicy::Heap, QueuePolicy::Auto] {
            scratch.set_queue_policy(policy);
            assert_eq!(scratch.queue_policy(), policy);
            let mut inst = setup::build(Algorithm::Lean, &inputs, 11);
            let report = run_noisy_scratch(
                &mut scratch,
                &mut inst,
                &exp_timing(),
                11,
                Limits::run_to_completion(),
            );
            let reference = reference.get_or_insert(report.clone());
            assert_eq!(*reference, report, "{policy:?}");
        }
    }

    #[test]
    fn batch_lanes_match_sequential_runs() {
        // The pipelined interleave must be invisible: every lane's
        // report equals its sequential run, at several widths and with
        // heterogeneous lane sizes.
        let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
        for k in [1usize, 2, 4, 5] {
            let mut scratches: Vec<EngineScratch> = (0..k).map(|_| EngineScratch::new()).collect();
            let mut insts: Vec<_> = (0..k)
                .map(|i| {
                    setup::build(
                        Algorithm::Lean,
                        &setup::half_and_half(4 + 7 * i),
                        50 + i as u64,
                    )
                })
                .collect();
            let seeds: Vec<u64> = (0..k as u64).map(|i| 50 + i).collect();
            let batch = drive_noisy_batch(
                &mut scratches,
                &mut insts,
                &timing,
                &seeds,
                Limits::run_to_completion(),
            );
            for (i, report) in batch.iter().enumerate() {
                let mut inst =
                    setup::build(Algorithm::Lean, &setup::half_and_half(4 + 7 * i), seeds[i]);
                let solo = run_noisy(&mut inst, &timing, seeds[i], Limits::run_to_completion());
                assert_eq!(*report, solo, "k={k} lane {i}");
            }
        }
    }

    #[test]
    fn batch_general_fallback_matches_sequential_runs() {
        // Random failures force the sequential fallback; reports must
        // still match lane by lane.
        let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 })
            .with_failures(FailureModel::Random { per_op: 0.05 });
        let k = 3;
        let inputs = setup::half_and_half(6);
        let mut scratches: Vec<EngineScratch> = (0..k).map(|_| EngineScratch::new()).collect();
        let mut insts: Vec<_> = (0..k)
            .map(|i| setup::build(Algorithm::Lean, &inputs, i as u64))
            .collect();
        let seeds: Vec<u64> = (0..k as u64).collect();
        let batch = drive_noisy_batch(
            &mut scratches,
            &mut insts,
            &timing,
            &seeds,
            Limits::run_to_completion(),
        );
        for (i, report) in batch.iter().enumerate() {
            let mut inst = setup::build(Algorithm::Lean, &inputs, seeds[i]);
            let solo = run_noisy(&mut inst, &timing, seeds[i], Limits::run_to_completion());
            assert_eq!(*report, solo, "lane {i}");
        }
    }

    #[test]
    fn batch_first_decision_cutoff_per_lane() {
        let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
        let k = 4;
        let inputs = setup::half_and_half(20);
        let mut scratches: Vec<EngineScratch> = (0..k).map(|_| EngineScratch::new()).collect();
        let mut insts: Vec<_> = (0..k)
            .map(|i| setup::build(Algorithm::Lean, &inputs, 100 + i as u64))
            .collect();
        let seeds: Vec<u64> = (0..k as u64).map(|i| 100 + i).collect();
        let batch = drive_noisy_batch(
            &mut scratches,
            &mut insts,
            &timing,
            &seeds,
            Limits::first_decision(),
        );
        for (i, report) in batch.iter().enumerate() {
            assert_eq!(report.outcome, RunOutcome::FirstDecision, "lane {i}");
            let mut inst = setup::build(Algorithm::Lean, &inputs, seeds[i]);
            let solo = run_noisy(&mut inst, &timing, seeds[i], Limits::first_decision());
            assert_eq!(*report, solo, "lane {i}");
        }
    }

    #[test]
    fn batched_core_matches_per_event_loop() {
        // K = 1 takes the legacy per-event fast loop; every other K
        // routes through the batched core. Reports must be identical
        // across K, with either forced queue, for every limit shape.
        // (The cross-scenario matrix lives in tests/soa_equivalence.rs.)
        let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
        for (n, seed, limits) in [
            (1usize, 1u64, Limits::run_to_completion()),
            (12, 2, Limits::run_to_completion()),
            (40, 3, Limits::first_decision()),
            (100, 4, Limits::run_to_completion().with_max_ops(1000)),
        ] {
            let inputs = setup::half_and_half(n);
            let mut reference = None;
            for k in [1usize, 2, 4, 8, 64] {
                for policy in [QueuePolicy::Heap, QueuePolicy::Tree] {
                    let mut scratch = EngineScratch::with_queue(policy);
                    scratch.set_event_batch(k);
                    let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
                    let report = run_noisy_scratch(&mut scratch, &mut inst, &timing, seed, limits);
                    let reference = reference.get_or_insert(report.clone());
                    assert_eq!(*reference, report, "n={n} k={k} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn adversarial_batch_plan_matches_sequential() {
        // A plan that changes K before every micro-batch (including
        // zeros, which clamp to 1) must still be invisible.
        let timing = exp_timing();
        let inputs = setup::half_and_half(24);
        let limits = Limits::run_to_completion();
        let mut inst_seq = setup::build(Algorithm::Lean, &inputs, 7);
        let sequential = run_noisy(&mut inst_seq, &timing, 7, limits);

        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut plan = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 9) as usize
        };
        let mut scratch = EngineScratch::new();
        let mut inst = setup::build(Algorithm::Lean, &inputs, 7);
        let batched =
            drive_noisy_with_batch_plan(&mut scratch, &mut inst, &timing, 7, limits, &mut plan);
        assert_eq!(batched, sequential);
    }

    #[test]
    fn batched_dense_plane_matches_batched_sim_memory() {
        // The PlaneIo lane (direct dense-word access) and the MemIo
        // lane (per-op dispatch) must leave identical reports and
        // identical memory observables.
        let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
        let inputs = setup::half_and_half(32);
        for seed in 0..4 {
            let mut scratch_a = EngineScratch::new();
            let mut scratch_b = EngineScratch::new();
            let mut dense = setup::build_lean_in(&inputs, nc_memory::DenseRaceMemory::new());
            let mut sparse = setup::build_lean_in(&inputs, nc_memory::SimMemory::new());
            let a = drive_noisy(
                &mut scratch_a,
                &mut dense,
                &timing,
                seed,
                Limits::run_to_completion(),
                None,
                None,
            );
            let b = drive_noisy(
                &mut scratch_b,
                &mut sparse,
                &timing,
                seed,
                Limits::run_to_completion(),
                None,
                None,
            );
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(
                nc_memory::MemStore::ops_executed(&dense.mem),
                nc_memory::MemStore::ops_executed(&sparse.mem),
                "seed {seed}"
            );
            // (footprints are not compared: SimMemory's is geometrically
            // padded, the dense store's is the exact high-water mark.)
            for w in 0..nc_memory::MemStore::footprint_words(&dense.mem) {
                let addr = nc_memory::Addr::new(w);
                assert_eq!(
                    nc_memory::MemStore::peek(&dense.mem, addr),
                    nc_memory::MemStore::peek(&sparse.mem, addr),
                    "seed {seed} word {w}"
                );
            }
        }
    }

    /// The optimized engine must be **bit-for-bit identical** to the
    /// naive BinaryHeap baseline: same streams consumed in the same
    /// per-process order, same (unique) event order, so same reports.
    /// (The full scenario-matrix differential suite, including both
    /// forced queues, lives in `tests/soa_equivalence.rs`.)
    mod baseline_equivalence {
        use super::*;
        use crate::baseline::{run_noisy_baseline, run_noisy_with_baseline};

        fn assert_equivalent(
            alg: Algorithm,
            inputs: &[Bit],
            timing: &TimingModel,
            seed: u64,
            limits: Limits,
        ) {
            let mut inst_a = setup::build(alg, inputs, seed);
            let mut inst_b = setup::build(alg, inputs, seed);
            let optimized = run_noisy(&mut inst_a, timing, seed, limits);
            let naive = run_noisy_baseline(&mut inst_b, timing, seed, limits);
            assert_eq!(optimized, naive, "{alg:?} {timing:?} seed {seed}");
        }

        #[test]
        fn figure1_suite_all_seeds() {
            for (_, noise) in Noise::figure1_suite() {
                let timing = TimingModel::figure1(noise);
                for seed in 0..4 {
                    assert_equivalent(
                        Algorithm::Lean,
                        &setup::half_and_half(12),
                        &timing,
                        seed,
                        Limits::run_to_completion(),
                    );
                    assert_equivalent(
                        Algorithm::Lean,
                        &setup::half_and_half(40),
                        &timing,
                        seed,
                        Limits::first_decision(),
                    );
                }
            }
        }

        #[test]
        fn with_random_failures() {
            for per_op in [0.01, 0.2, 0.9] {
                let timing = exp_timing().with_failures(FailureModel::Random { per_op });
                for seed in 0..4 {
                    assert_equivalent(
                        Algorithm::Lean,
                        &setup::half_and_half(8),
                        &timing,
                        seed,
                        Limits::run_to_completion(),
                    );
                }
            }
        }

        #[test]
        fn with_per_kind_noise_and_delays() {
            // Per-kind distributions disable the batch path; adversarial
            // delays exercise DelayPolicy. Both must still match.
            let timing = TimingModel {
                start: StartTimes::dithered(),
                delay: DelayPolicy::Periodic {
                    period: 3,
                    extra: 0.5,
                },
                noise: nc_sched::OpNoise::per_kind(
                    Noise::Exponential { mean: 1.0 },
                    Noise::Uniform { lo: 0.0, hi: 2.0 },
                ),
                failures: FailureModel::None,
            };
            for seed in 0..4 {
                assert_equivalent(
                    Algorithm::Lean,
                    &setup::half_and_half(10),
                    &timing,
                    seed,
                    Limits::run_to_completion(),
                );
            }
        }

        #[test]
        fn all_algorithms() {
            for alg in [
                Algorithm::Lean,
                Algorithm::Skipping,
                Algorithm::Randomized,
                Algorithm::Bounded { r_max: 10 },
                Algorithm::Backup,
            ] {
                assert_equivalent(
                    alg,
                    &setup::half_and_half(6),
                    &exp_timing(),
                    42,
                    Limits::run_to_completion(),
                );
            }
        }

        #[test]
        fn op_cap_and_lockstep() {
            let timing = TimingModel {
                start: StartTimes::Simultaneous { dither: 1e-9 },
                delay: DelayPolicy::None,
                noise: nc_sched::OpNoise::same(Noise::Constant { value: 1.0 }),
                failures: FailureModel::None,
            };
            assert_equivalent(
                Algorithm::Lean,
                &setup::alternating(4),
                &timing,
                3,
                Limits::run_to_completion().with_max_ops(50_000),
            );
        }

        #[test]
        fn with_crash_adversary_and_history() {
            for seed in 0..4 {
                let inputs = setup::half_and_half(6);
                let mut inst_a = setup::build(Algorithm::Lean, &inputs, seed);
                let mut inst_b = setup::build(Algorithm::Lean, &inputs, seed);
                let mut killer_a = LeaderKiller::new(3, 2);
                let mut killer_b = LeaderKiller::new(3, 2);
                let mut hist_a = Vec::new();
                let mut hist_b = Vec::new();
                let optimized = run_noisy_with(
                    &mut inst_a,
                    &exp_timing(),
                    seed,
                    Limits::run_to_completion(),
                    Some(&mut killer_a),
                    Some(&mut hist_a),
                );
                let naive = run_noisy_with_baseline(
                    &mut inst_b,
                    &exp_timing(),
                    seed,
                    Limits::run_to_completion(),
                    Some(&mut killer_b),
                    Some(&mut hist_b),
                );
                assert_eq!(optimized, naive, "seed {seed}");
                assert_eq!(hist_a, hist_b, "histories diverged at seed {seed}");
            }
        }

        #[test]
        fn staggered_and_explicit_starts() {
            let staggered = exp_timing().with_start(StartTimes::Staggered {
                gap: 100.0,
                dither: 0.5,
            });
            let explicit = exp_timing().with_start(StartTimes::Explicit(vec![3.0, 0.0, 7.0]));
            for seed in 0..3 {
                assert_equivalent(
                    Algorithm::Lean,
                    &setup::half_and_half(5),
                    &staggered,
                    seed,
                    Limits::run_to_completion(),
                );
                assert_equivalent(
                    Algorithm::Lean,
                    &setup::alternating(3),
                    &explicit,
                    seed,
                    Limits::run_to_completion(),
                );
            }
        }
    }
}
