//! Discrete-event simulation engine for the `noisy-consensus` workspace.
//!
//! The front door is [`sim::Sim`] — one typed builder covering every
//! execution model from the paper. Pick an [`Algorithm`] and inputs,
//! pick a schedule, layer options — including the word-store plane the
//! run executes against ([`sim::Sim::memory_backend`], any
//! [`MemStore`]) and deterministic value-fault injection
//! ([`sim::Sim::value_faults`]) — then either run seeds one at a time
//! through a reusable [`sim::SimRun`] handle or sweep thousands of
//! trials through a [`sim::TrialSet`] (which owns scratch pooling,
//! lockstep trial pipelining, and per-call worker fan-out):
//!
//! * [`sim::Sim::timing`] — the noisy-scheduling model (§3.1):
//!   operation times follow `S'_ij = Δ_i0 + Σ (Δ_ij + X_ij + H_ij)`
//!   from an [`nc_sched::TimingModel`]; an event queue executes
//!   operations in time order (the interleaving model). Supports random
//!   halting failures ([`sim::Sim::faults`]), adaptive crash
//!   adversaries (§10, [`sim::Sim::crash_adversary`]), first-decision
//!   early exit (what Figure 1 measures), and history recording for the
//!   register-semantics checker ([`sim::Sim::record_history`]).
//! * [`sim::Sim::adversary`] — a fully adversarial untimed scheduler
//!   ([`nc_sched::Adversary`] picks every step), used to exercise the
//!   safety properties that must hold under *any* schedule.
//! * [`sim::Sim::hybrid`] — the hybrid quantum + priority uniprocessor
//!   (§3.2/§7), enforcing [`nc_sched::HybridSpec`] legality while an
//!   [`nc_sched::HybridPolicy`] (the adversary) picks among legal moves.
//!
//! [`setup`] assembles ready-to-run instances of each algorithm variant
//! (paper lean-consensus, the skip-ops ablation, the local-coin variant,
//! the §8 bounded protocol with the real backup, or the backup alone),
//! and [`report::RunReport`] is the common result type, with the paper's
//! safety lemmas checkable via [`report::RunReport::check_safety`].
//!
//! Beneath the builder sit the public drive internals
//! ([`noisy::drive_noisy`], [`noisy::drive_noisy_batch`],
//! [`adversarial::drive_adversarial`], [`hybrid::drive_hybrid`]);
//! `tests/sim_equivalence.rs` pins the builder bit-for-bit against
//! them. (The pre-builder `run_*` wrappers, deprecated since the `Sim`
//! redesign, are gone — see the migration table in
//! `docs/engine-internals.md`.)
//!
//! # Example: one Figure 1 data point
//!
//! ```
//! use nc_engine::sim::Sim;
//! use nc_engine::{setup, Algorithm, Limits};
//! use nc_sched::{Noise, TimingModel};
//!
//! let inputs = setup::half_and_half(10);
//! let mut sim = Sim::new(Algorithm::Lean)
//!     .inputs(inputs.clone())
//!     .timing(TimingModel::figure1(Noise::Exponential { mean: 1.0 }))
//!     .limits(Limits::first_decision())
//!     .build();
//! let report = sim.run(42);
//! let first = report.first_decision_round.expect("terminates");
//! assert!(first >= 2);
//! report.check_safety(&inputs).unwrap();
//! ```
//!
//! # Example: a sweep with per-call parallelism
//!
//! ```
//! use nc_engine::sim::Sim;
//! use nc_engine::{setup, Algorithm, Limits};
//! use nc_sched::{Noise, TimingModel};
//!
//! let rounds: Vec<usize> = Sim::new(Algorithm::Lean)
//!     .inputs(setup::half_and_half(12))
//!     .timing(TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 }))
//!     .limits(Limits::first_decision())
//!     .trials(64)
//!     .seed0(7)
//!     .seed_stride(13)
//!     .threads(2) // this sweep's workers — no process-global knob
//!     .map(|report| report.first_decision_round.unwrap());
//! assert_eq!(rounds.len(), 64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod adversarial;
#[cfg(any(test, feature = "baseline"))]
#[path = "noisy_baseline.rs"]
pub mod baseline;
pub mod hybrid;
pub mod noisy;
pub mod report;
pub mod setup;
pub mod sim;

pub use noisy::EngineScratch;
pub use report::{Limits, RunOutcome, RunReport};
pub use setup::{build, half_and_half, Algorithm, Instance};
pub use sim::{Sim, SimRun, TrialSet};

// Re-exported so engine callers can pick a queue without importing
// nc-sched directly.
pub use nc_sched::select::{QueueKind, QueuePolicy};

// Re-exported so engine callers can pick a memory plane
// ([`sim::Sim::memory_backend`]) or describe value faults
// ([`sim::Sim::value_faults`]) without importing nc-memory directly.
pub use nc_memory::{DenseRaceMemory, FaultSpec, FaultyMemory, MemStore};
