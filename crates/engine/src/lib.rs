//! Discrete-event simulation engine for the `noisy-consensus` workspace.
//!
//! Three drivers execute [`nc_core::Protocol`] step machines against a
//! shared [`nc_memory::SimMemory`], each under a different scheduling
//! model from the paper:
//!
//! * [`noisy::run_noisy`] — the noisy-scheduling model (§3.1): operation
//!   times follow `S'_ij = Δ_i0 + Σ (Δ_ij + X_ij + H_ij)` from an
//!   [`nc_sched::TimingModel`]; an event queue executes operations in
//!   time order (the interleaving model). Supports random halting
//!   failures, adaptive crash adversaries (§10), first-decision early
//!   exit (what Figure 1 measures), and optional history recording for
//!   the register-semantics checker.
//! * [`adversarial::run_adversarial`] — a fully adversarial untimed
//!   scheduler ([`nc_sched::Adversary`] picks every step), used to
//!   exercise the safety properties that must hold under *any* schedule.
//! * [`hybrid::run_hybrid`] — the hybrid quantum + priority uniprocessor
//!   (§3.2/§7), enforcing [`nc_sched::HybridSpec`] legality while an
//!   [`nc_sched::HybridPolicy`] (the adversary) picks among legal moves.
//!
//! [`setup`] assembles ready-to-run instances of each algorithm variant
//! (paper lean-consensus, the skip-ops ablation, the local-coin variant,
//! the §8 bounded protocol with the real backup, or the backup alone),
//! and [`report::RunReport`] is the common result type, with the paper's
//! safety lemmas checkable via [`report::RunReport::check_safety`].
//!
//! # Example: one Figure 1 data point
//!
//! ```
//! use nc_engine::{noisy, setup, Limits};
//! use nc_sched::{Noise, TimingModel};
//!
//! let mut inst = setup::build(setup::Algorithm::Lean, &setup::half_and_half(10), 42);
//! let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
//! let report = noisy::run_noisy(
//!     &mut inst,
//!     &timing,
//!     42,
//!     Limits::first_decision(),
//! );
//! let first = report.first_decision_round.expect("terminates");
//! assert!(first >= 2);
//! report.check_safety(&inst.inputs).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod adversarial;
#[cfg(any(test, feature = "baseline"))]
#[path = "noisy_baseline.rs"]
pub mod baseline;
pub mod hybrid;
pub mod noisy;
pub mod report;
pub mod setup;

pub use adversarial::run_adversarial;
pub use hybrid::run_hybrid;
pub use noisy::{run_noisy, run_noisy_batch, run_noisy_scratch, run_noisy_with, EngineScratch};
pub use report::{Limits, RunOutcome, RunReport};
pub use setup::{build, half_and_half, Algorithm, Instance};

// Re-exported so engine callers can pick a queue without importing
// nc-sched directly.
pub use nc_sched::select::{QueueKind, QueuePolicy};
