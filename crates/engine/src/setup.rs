//! Instance assembly: memory, layouts, and protocol state machines.
//!
//! Drivers are generic over [`nc_core::Protocol`], but the experiment
//! harness wants to swap algorithms by name. [`build`] wires each
//! [`Algorithm`] variant to its memory regions and per-process RNG
//! streams and hands back a uniform [`Instance`] of boxed protocols.

use rand::rngs::SmallRng;

use nc_backup::{BackupConsensus, BackupLayout};
use nc_core::{BoundedLean, LeanConsensus, Protocol, RandomizedLean, SkippingLean};
use nc_memory::{Bit, MemStore, RaceLayout, SimMemory};
use nc_sched::rng::salts;
use nc_sched::stream_rng;

/// Default round-slot pool for backup instances.
const BACKUP_ROUND_SLOTS: usize = 64;

/// Which protocol to instantiate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// The paper's lean-consensus (§4), operation-exact.
    Lean,
    /// The skip-ops "optimization" the paper warns against (ablation).
    Skipping,
    /// lean-consensus with the safe local tie coin.
    Randomized,
    /// The §8 bounded protocol: lean through `r_max`, then the real
    /// backup ([`nc_backup::BackupConsensus`]).
    Bounded {
        /// Round cutoff before the backup engages.
        r_max: usize,
    },
    /// The backup protocol alone (the randomized shared-coin baseline).
    Backup,
}

impl Algorithm {
    /// Short machine-friendly label, used in experiment CSV output.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Lean => "lean",
            Algorithm::Skipping => "skipping",
            Algorithm::Randomized => "randomized",
            Algorithm::Bounded { .. } => "bounded",
            Algorithm::Backup => "backup",
        }
    }
}

/// A ready-to-run set of processes over one shared memory.
///
/// Generic over the protocol representation **and** the word-store
/// plane: the default `Box<dyn Protocol>` over [`SimMemory`] lets the
/// harness swap algorithms by name, while concrete parameters (e.g.
/// [`Instance<LeanConsensus>`] from [`build_lean`], or any
/// [`MemStore`] backend via [`build_in`]) monomorphize the drivers —
/// the protocol's fused step and the memory's `read`/`write` inline
/// straight into the engine's event loop with no virtual dispatch,
/// which is worth a large constant factor on sweep workloads.
#[derive(Debug)]
pub struct Instance<P = Box<dyn Protocol>, M = SimMemory>
where
    P: Protocol<M>,
    M: MemStore,
{
    /// The shared memory, sentinels installed.
    pub mem: M,
    /// One protocol state machine per process.
    pub procs: Vec<P>,
    /// The inputs the processes were created with.
    pub inputs: Vec<Bit>,
    /// Which algorithm was instantiated.
    pub algorithm: Algorithm,
}

impl<P: Protocol<M>, M: MemStore> Instance<P, M> {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }
}

impl<M: MemStore> Instance<LeanConsensus, M> {
    /// Re-initializes this instance in place for a fresh trial with
    /// `inputs` — equivalent to [`build_lean`] but reusing every
    /// allocation (memory words, process vector, inputs vector), so a
    /// sweep's steady state builds instances allocation-free.
    pub fn rebuild(&mut self, inputs: &[Bit]) {
        assert!(!inputs.is_empty(), "need at least one process");
        self.mem.reset();
        let layout = race_layout(&mut self.mem);
        self.procs.clear();
        self.procs
            .extend(inputs.iter().map(|&b| LeanConsensus::new(layout, b)));
        self.inputs.clear();
        self.inputs.extend_from_slice(inputs);
    }
}

/// Builds an instance of `algorithm` for the given inputs.
///
/// `seed` derives every per-process RNG stream (coin streams for the
/// randomized variants), so identical `(algorithm, inputs, seed)` triples
/// build identical instances.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn build(algorithm: Algorithm, inputs: &[Bit], seed: u64) -> Instance {
    build_in(algorithm, inputs, seed, SimMemory::new())
}

/// [`build`] on an explicit word-store plane: the same wiring, with the
/// boxed protocols and the instance monomorphized over `M`.
///
/// `mem` is reset first, so passing a reused or prototype store is
/// fine; fault-injecting stores ([`nc_memory::FaultyMemory`]) come back
/// disarmed — the driver arms them per trial via
/// [`MemStore::reseed`] after this function's setup writes.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn build_in<M: MemStore>(
    algorithm: Algorithm,
    inputs: &[Bit],
    seed: u64,
    mut mem: M,
) -> Instance<Box<dyn Protocol<M>>, M> {
    assert!(!inputs.is_empty(), "need at least one process");
    let n = inputs.len();
    mem.reset();
    let coin = |pid: usize| -> SmallRng { stream_rng(seed, pid as u64, salts::COIN) };

    let procs: Vec<Box<dyn Protocol<M>>> = match algorithm {
        Algorithm::Lean => {
            let layout = race_layout(&mut mem);
            inputs
                .iter()
                .map(|&b| Box::new(LeanConsensus::new(layout, b)) as Box<dyn Protocol<M>>)
                .collect()
        }
        Algorithm::Skipping => {
            let layout = race_layout(&mut mem);
            inputs
                .iter()
                .map(|&b| Box::new(SkippingLean::new(layout, b)) as Box<dyn Protocol<M>>)
                .collect()
        }
        Algorithm::Randomized => {
            let layout = race_layout(&mut mem);
            inputs
                .iter()
                .enumerate()
                .map(|(pid, &b)| {
                    Box::new(RandomizedLean::new(layout, b, coin(pid))) as Box<dyn Protocol<M>>
                })
                .collect()
        }
        Algorithm::Bounded { r_max } => {
            // Lean gets the low addresses (sentinels + r_max + 1 rounds of
            // slack for the final partial round), the backup a disjoint
            // region above them.
            let lean_region = mem.alloc(RaceLayout::words_for_rounds(r_max + 2));
            let lean_layout = RaceLayout::in_region(lean_region);
            lean_layout.install_sentinels(&mut mem);
            let backup_region = mem.alloc(BackupLayout::words_needed(n, BACKUP_ROUND_SLOTS));
            let backup_layout = BackupLayout::new(backup_region, n, BACKUP_ROUND_SLOTS);
            inputs
                .iter()
                .enumerate()
                .map(|(pid, &b)| {
                    let rng = coin(pid);
                    let make = Box::new(move |pref: Bit| {
                        BackupConsensus::new(backup_layout, pid, pref, rng)
                    })
                        as Box<dyn FnOnce(Bit) -> BackupConsensus + Send>;
                    Box::new(BoundedLean::new(lean_layout, b, r_max, make)) as Box<dyn Protocol<M>>
                })
                .collect()
        }
        Algorithm::Backup => {
            let region = mem.alloc(BackupLayout::words_needed(n, BACKUP_ROUND_SLOTS));
            let layout = BackupLayout::new(region, n, BACKUP_ROUND_SLOTS);
            inputs
                .iter()
                .enumerate()
                .map(|(pid, &b)| {
                    Box::new(BackupConsensus::new(layout, pid, b, coin(pid)))
                        as Box<dyn Protocol<M>>
                })
                .collect()
        }
    };

    Instance {
        mem,
        procs,
        inputs: inputs.to_vec(),
        algorithm,
    }
}

/// Builds a **monomorphized** lean-consensus instance: the same
/// configuration as [`build`]`(Algorithm::Lean, ..)` but with concrete
/// [`LeanConsensus`] processes instead of boxed trait objects. This is
/// the Figure 1 hot path: the engine's event loop specializes over the
/// protocol type and executes it without virtual dispatch.
///
/// lean-consensus is deterministic, so unlike [`build`] no seed is
/// needed.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn build_lean(inputs: &[Bit]) -> Instance<LeanConsensus> {
    build_lean_in(inputs, SimMemory::new())
}

/// [`build_lean`] on an explicit word-store plane (`mem` is reset
/// first), for the monomorphized fast path over alternative backends.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn build_lean_in<M: MemStore>(inputs: &[Bit], mut mem: M) -> Instance<LeanConsensus, M> {
    assert!(!inputs.is_empty(), "need at least one process");
    mem.reset();
    let layout = race_layout(&mut mem);
    Instance {
        mem,
        procs: inputs
            .iter()
            .map(|&b| LeanConsensus::new(layout, b))
            .collect(),
        inputs: inputs.to_vec(),
        algorithm: Algorithm::Lean,
    }
}

fn race_layout<M: MemStore>(mem: &mut M) -> RaceLayout {
    let layout = RaceLayout::at_base(0);
    layout.install_sentinels(mem);
    layout
}

/// The paper's Figure 1 input split: the first `n / 2` processes propose
/// 0, the rest propose 1 (for odd `n`, the 1-side gets the extra
/// process).
pub fn half_and_half(n: usize) -> Vec<Bit> {
    (0..n)
        .map(|i| if i < n / 2 { Bit::Zero } else { Bit::One })
        .collect()
}

/// Unanimous inputs (for validity-cost experiments).
pub fn unanimous(n: usize, bit: Bit) -> Vec<Bit> {
    vec![bit; n]
}

/// Alternating inputs 0,1,0,1,… (an interleaved team split).
pub fn alternating(n: usize) -> Vec<Bit> {
    (0..n).map(|i| Bit::from(i % 2 == 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::{run_random_interleave, run_round_robin};

    #[test]
    fn input_helpers() {
        assert_eq!(
            half_and_half(4),
            vec![Bit::Zero, Bit::Zero, Bit::One, Bit::One]
        );
        assert_eq!(half_and_half(3), vec![Bit::Zero, Bit::One, Bit::One]);
        assert_eq!(half_and_half(1), vec![Bit::One]);
        assert_eq!(unanimous(2, Bit::Zero), vec![Bit::Zero, Bit::Zero]);
        assert_eq!(alternating(3), vec![Bit::Zero, Bit::One, Bit::Zero]);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Algorithm::Lean.label(),
            Algorithm::Skipping.label(),
            Algorithm::Randomized.label(),
            Algorithm::Bounded { r_max: 5 }.label(),
            Algorithm::Backup.label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn every_algorithm_builds_and_solo_decides() {
        for alg in [
            Algorithm::Lean,
            Algorithm::Skipping,
            Algorithm::Randomized,
            Algorithm::Bounded { r_max: 8 },
            Algorithm::Backup,
        ] {
            for input in Bit::BOTH {
                let mut inst = build(alg, &[input], 7);
                assert_eq!(inst.n(), 1);
                let decisions = run_round_robin(&mut inst.procs, &mut inst.mem, 1_000_000)
                    .unwrap_or_else(|| panic!("{alg:?} solo did not decide"));
                assert_eq!(decisions, vec![input], "{alg:?} validity");
            }
        }
    }

    #[test]
    fn every_algorithm_agrees_on_mixed_inputs() {
        for alg in [
            Algorithm::Lean,
            Algorithm::Skipping,
            Algorithm::Randomized,
            Algorithm::Bounded { r_max: 12 },
            Algorithm::Backup,
        ] {
            let inputs = half_and_half(4);
            let mut inst = build(alg, &inputs, 99);
            let decisions = run_random_interleave(&mut inst.procs, &mut inst.mem, 3, 50_000_000)
                .unwrap_or_else(|| panic!("{alg:?} did not terminate"));
            assert!(
                decisions.iter().all(|&d| d == decisions[0]),
                "{alg:?} disagreement"
            );
        }
    }

    #[test]
    fn bounded_lockstep_terminates_via_backup() {
        // The decisive §8 property: under lockstep round-robin, lean
        // alone never terminates, but the bounded protocol must (its
        // backup has a shared coin).
        let inputs = alternating(2);
        let mut inst = build(Algorithm::Bounded { r_max: 4 }, &inputs, 11);
        let decisions = run_round_robin(&mut inst.procs, &mut inst.mem, 50_000_000)
            .expect("bounded protocol must terminate under lockstep");
        assert_eq!(decisions[0], decisions[1]);
    }

    #[test]
    fn same_seed_same_build() {
        let a = build(Algorithm::Randomized, &half_and_half(4), 5);
        let b = build(Algorithm::Randomized, &half_and_half(4), 5);
        // Drive both identically and compare decisions.
        let (mut a, mut b) = (a, b);
        let da = run_random_interleave(&mut a.procs, &mut a.mem, 1, 10_000_000).unwrap();
        let db = run_random_interleave(&mut b.procs, &mut b.mem, 1, 10_000_000).unwrap();
        assert_eq!(da, db);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_inputs_panic() {
        build(Algorithm::Lean, &[], 0);
    }
}
