//! The composable simulation API: one typed builder for every
//! execution model, plus the [`TrialSet`] sweep layer.
//!
//! Historically each scheduling model had its own fan of entry points
//! (`run_noisy`, `run_noisy_scratch`, `run_noisy_with`, … — deleted
//! once all callers migrated), and every new capability — scratch
//! reuse, crash adversaries, history recording — added another
//! positional `Option<&mut dyn …>` to every signature. [`Sim`]
//! replaces that fan with one builder over the public drive internals
//! ([`crate::noisy::drive_noisy`] and friends):
//!
//! * pick an [`Algorithm`] and inputs,
//! * pick exactly one **schedule** — [`Sim::timing`] (the noisy model,
//!   §3.1), [`Sim::adversary`] (a fully adversarial untimed scheduler),
//!   or [`Sim::hybrid`] (the quantum + priority uniprocessor, §3.2/§7),
//! * layer options on top: [`Sim::faults`], [`Sim::crash_adversary`],
//!   [`Sim::record_history`], [`Sim::limits`], [`Sim::queue_policy`],
//!   [`Sim::memory_backend`] (the word-store plane the run executes
//!   against — any [`MemStore`], e.g. `DenseRaceMemory`), and
//!   [`Sim::value_faults`] (deterministic seeded stuck-at/drop/bit-flip
//!   value faults via `FaultyMemory`),
//! * [`Sim::build`] a reusable [`SimRun`] handle and call
//!   [`SimRun::run`] per seed, or go straight to a sweep with
//!   [`Sim::trials`].
//!
//! New workloads become *configuration*, not new function signatures.
//!
//! The handle owns every piece of reusable state: an [`EngineScratch`],
//! the monomorphized `Instance<LeanConsensus>` fast path (rebuilt in
//! place for [`Algorithm::Lean`] under a noisy schedule — no allocation
//! per run), and the history buffer. [`TrialSet`] additionally owns the
//! sweep machinery: per-worker scratch pooling, K-lane lockstep
//! pipelining, and the thread fan-out — **parallelism is per-call
//! state**, not a process-global knob, so two sweeps with different
//! worker counts can run concurrently without interfering.
//!
//! Determinism: a trial's report is a pure function of
//! `(configuration, seed)` — bit-for-bit identical at every thread
//! count and lane width, and identical to the deprecated `run_*` entry
//! points (pinned by `tests/sim_equivalence.rs`).
//!
//! # Example: one Figure 1 data point
//!
//! ```
//! use nc_engine::sim::Sim;
//! use nc_engine::{setup, Algorithm, Limits};
//! use nc_sched::{Noise, TimingModel};
//!
//! let mean: f64 = {
//!     let rounds = Sim::new(Algorithm::Lean)
//!         .inputs(setup::half_and_half(16))
//!         .timing(TimingModel::figure1(Noise::Exponential { mean: 1.0 }))
//!         .limits(Limits::first_decision())
//!         .trials(32)
//!         .seed0(7)
//!         .threads(1)
//!         .map(|report| report.first_decision_round.expect("terminates") as f64);
//!     rounds.iter().sum::<f64>() / rounds.len() as f64
//! };
//! assert!(mean >= 2.0);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use nc_core::LeanConsensus;
use nc_core::Protocol;
use nc_memory::{Bit, Event, FaultSpec, FaultyMemory, MemStore, SimMemory};
use nc_sched::adversary::{Adversary, CrashAdversary, NoCrashes};
use nc_sched::hybrid::{HybridPolicy, HybridSpec};
use nc_sched::rng::{salts, trial_seed};
use nc_sched::select::QueuePolicy;
use nc_sched::{FailureModel, TimingModel};

use crate::noisy::{self, EngineScratch};
use crate::report::{Limits, RunReport};
use crate::setup::{self, Algorithm, Instance};
use crate::{adversarial, hybrid};

/// Pipeline lanes a [`TrialSet`] interleaves per worker by default.
///
/// Interleaving K > 1 independent trials multiplies the per-worker
/// working set by K in exchange for overlapping the lanes' cache-miss
/// chains. On the 1-core reference VM that trade **loses** at every
/// measured scale (2 lanes: −8% at n = 1000, −25% at n = 10000; see
/// `BENCH_engine.json`'s pipelined column), because the VM's cache is
/// too small to hold even two lanes' state, so the default is 1
/// (sequential trials, zero overhead — `bench_engine` asserts the
/// K > 1 path stays bit-identical). Raise it via [`TrialSet::lanes`] on
/// hardware with enough private cache per core for K working sets;
/// re-measure with
/// `cargo run --release -p nc-bench --bin bench_engine -- --lanes K`.
pub const PIPELINE_LANES: usize = 1;

/// A factory producing a fresh crash adversary for a run with the given
/// seed (adversaries are stateful, so a reusable handle needs one per
/// run).
type CrashFactory = Box<dyn Fn(u64) -> Box<dyn CrashAdversary> + Send + Sync>;
/// A factory producing a fresh schedule adversary per run.
type AdversaryFactory = Box<dyn Fn(u64) -> Box<dyn Adversary> + Send + Sync>;
/// A factory producing a fresh hybrid policy per run.
type PolicyFactory = Box<dyn Fn(u64) -> Box<dyn HybridPolicy> + Send + Sync>;
/// A seed-derivation override for [`TrialSet`].
type SeedFn = Box<dyn Fn(u64) -> u64 + Send + Sync>;

/// Which scheduling model drives the run.
enum Schedule {
    /// The noisy-scheduling model (§3.1): an event queue executes
    /// operations at times drawn from the timing model.
    Noisy(TimingModel),
    /// A fully adversarial untimed scheduler picks every step.
    Adversarial(AdversaryFactory),
    /// The hybrid quantum + priority uniprocessor (§3.2/§7).
    Hybrid(HybridSpec, PolicyFactory),
}

impl Schedule {
    fn name(&self) -> &'static str {
        match self {
            Schedule::Noisy(_) => "noisy",
            Schedule::Adversarial(_) => "adversarial",
            Schedule::Hybrid(..) => "hybrid",
        }
    }
}

/// The validated, immutable configuration shared by [`SimRun`] and
/// [`TrialSet`] (and by every worker thread of a sweep). `mem` is the
/// prototype word store each lane stamps its own copy from.
struct SimConfig<M: MemStore = SimMemory> {
    algorithm: Algorithm,
    inputs: Vec<Bit>,
    schedule: Schedule,
    limits: Limits,
    queue: QueuePolicy,
    crash: Option<CrashFactory>,
    record_history: bool,
    mem: M,
    batch: usize,
}

impl<M: MemStore> SimConfig<M> {
    /// Whether the K-lane lockstep batch driver may serve this
    /// configuration (monomorphized lean under a noisy schedule, no
    /// per-run adversary or history hooks).
    fn lean_batch_eligible(&self) -> bool {
        self.algorithm == Algorithm::Lean
            && matches!(self.schedule, Schedule::Noisy(_))
            && self.crash.is_none()
            && !self.record_history
    }
}

/// Typed builder for a simulation: algorithm + inputs + schedule +
/// options. See the [module docs](self) for the full tour.
///
/// All methods consume and return the builder. Finish with
/// [`Sim::build`] (a reusable [`SimRun`]) or [`Sim::trials`] (a
/// [`TrialSet`] sweep).
#[must_use = "a Sim does nothing until built into a SimRun or TrialSet"]
pub struct Sim<M: MemStore = SimMemory> {
    algorithm: Algorithm,
    inputs: Vec<Bit>,
    schedule: Option<Schedule>,
    faults: Option<FailureModel>,
    limits: Limits,
    queue: QueuePolicy,
    crash: Option<CrashFactory>,
    record_history: bool,
    mem: M,
    batch: usize,
}

impl<M: MemStore> std::fmt::Debug for Sim<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("algorithm", &self.algorithm)
            .field("n", &self.inputs.len())
            .field("schedule", &self.schedule.as_ref().map(Schedule::name))
            .field("limits", &self.limits)
            .field("queue", &self.queue)
            .finish()
    }
}

impl Sim {
    /// Starts a builder for the given algorithm, on the default
    /// [`SimMemory`] word-store plane. Inputs and a schedule must be
    /// supplied before [`Sim::build`].
    pub fn new(algorithm: Algorithm) -> Self {
        Sim {
            algorithm,
            inputs: Vec::new(),
            schedule: None,
            faults: None,
            limits: Limits::default(),
            queue: QueuePolicy::default(),
            crash: None,
            record_history: false,
            mem: SimMemory::new(),
            batch: noisy::DEFAULT_EVENT_BATCH,
        }
    }
}

impl<M: MemStore> Sim<M> {
    /// Swaps the word-store plane every run executes against, keeping
    /// the rest of the configuration. `mem` is the prototype each
    /// lane/worker clones and resets, so pass a fresh store (e.g.
    /// [`nc_memory::DenseRaceMemory::new()`]).
    ///
    /// Backends are observationally identical when fault-free — reports
    /// are bit-for-bit the same on every plane (pinned by the engine's
    /// equivalence suites) — so this is a performance/instrumentation
    /// knob, exactly like [`Sim::queue_policy`].
    ///
    /// This **replaces** the current plane wholesale, including any
    /// fault wrapper a previous [`Sim::value_faults`] call installed —
    /// to combine them, pick the backend first and layer faults on
    /// top: `.memory_backend(DenseRaceMemory::new()).value_faults(..)`.
    pub fn memory_backend<M2: MemStore>(self, mem: M2) -> Sim<M2> {
        Sim {
            algorithm: self.algorithm,
            inputs: self.inputs,
            schedule: self.schedule,
            faults: self.faults,
            limits: self.limits,
            queue: self.queue,
            crash: self.crash,
            record_history: self.record_history,
            mem,
            batch: self.batch,
        }
    }

    /// Wraps the current word-store plane in
    /// [`nc_memory::FaultyMemory`], injecting the deterministic seeded
    /// value faults of `spec` (stuck-at registers, write drops with
    /// rate δ, read bit-flips with rate ε) into every run.
    ///
    /// Unlike [`Sim::faults`] (random *halting*, part of the timing
    /// model), value faults perturb what protocols **observe** and are
    /// supported under every schedule. Each trial derives its own fault
    /// stream from the run seed (via `nc_sched::rng::trial_seed` with
    /// the dedicated fault salt), so runs stay pure functions of their
    /// seed at any thread count or lane width; setup writes (sentinels)
    /// are never faulted.
    ///
    /// Wraps the plane configured so far — call it *after*
    /// [`Sim::memory_backend`] (a later `memory_backend` call would
    /// replace the wrapper, faults included). Stacking `value_faults`
    /// composes: each layer injects an independent seeded stream.
    pub fn value_faults(self, spec: FaultSpec) -> Sim<FaultyMemory<M>> {
        let inner = self.mem.clone();
        self.memory_backend(FaultyMemory::new(inner, spec))
    }

    /// Sets the per-process input bits (e.g. [`setup::half_and_half`]).
    pub fn inputs(mut self, inputs: impl Into<Vec<Bit>>) -> Self {
        self.inputs = inputs.into();
        self
    }

    /// Selects the noisy-scheduling model (§3.1) with the given timing
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if a schedule was already selected.
    pub fn timing(mut self, timing: TimingModel) -> Self {
        self.set_schedule(Schedule::Noisy(timing));
        self
    }

    /// Selects the fully adversarial untimed scheduler. `make` builds a
    /// fresh adversary for each run from the run's seed (adversaries
    /// are stateful).
    ///
    /// # Panics
    ///
    /// Panics if a schedule was already selected.
    pub fn adversary<A, F>(mut self, make: F) -> Self
    where
        A: Adversary + 'static,
        F: Fn(u64) -> A + Send + Sync + 'static,
    {
        self.set_schedule(Schedule::Adversarial(Box::new(move |seed| {
            Box::new(make(seed))
        })));
        self
    }

    /// Selects the hybrid quantum + priority uniprocessor (§3.2/§7).
    /// `make` builds a fresh policy (the adversary picking among legal
    /// moves) for each run from the run's seed.
    ///
    /// # Panics
    ///
    /// Panics if a schedule was already selected.
    pub fn hybrid<P, F>(mut self, spec: HybridSpec, make: F) -> Self
    where
        P: HybridPolicy + 'static,
        F: Fn(u64) -> P + Send + Sync + 'static,
    {
        self.set_schedule(Schedule::Hybrid(
            spec,
            Box::new(move |seed| Box::new(make(seed))),
        ));
        self
    }

    /// Adds random halting failures (§3.1.2) to the noisy schedule —
    /// sugar for building the [`TimingModel`] with
    /// [`TimingModel::with_failures`]. Requires [`Sim::timing`].
    pub fn faults(mut self, failures: FailureModel) -> Self {
        self.faults = Some(failures);
        self
    }

    /// Attaches an adaptive crash adversary (§10). `make` builds a
    /// fresh adversary for each run from the run's seed; returned pids
    /// halt immediately. Supported under noisy and adversarial
    /// schedules (the hybrid model has no crashes).
    pub fn crash_adversary<C, F>(mut self, make: F) -> Self
    where
        C: CrashAdversary + 'static,
        F: Fn(u64) -> C + Send + Sync + 'static,
    {
        self.crash = Some(Box::new(move |seed| Box::new(make(seed))));
        self
    }

    /// Records every executed operation as an [`Event`] (time, pid, op,
    /// observed value), retrievable after each run via
    /// [`SimRun::history`] — the input to
    /// [`nc_memory::check_register_semantics_from`]. Noisy schedule
    /// only, and [`SimRun`] only ([`Sim::trials`] rejects it: sweep
    /// reports have nowhere to carry histories).
    pub fn record_history(mut self) -> Self {
        self.record_history = true;
        self
    }

    /// Sets the run limits (op budget, first-decision cutoff). Defaults
    /// to [`Limits::run_to_completion`].
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Forces an event-queue policy (defaults to [`QueuePolicy::Auto`]:
    /// heap at small `n`, branchless tree at large `n`). The choice
    /// never affects results.
    pub fn queue_policy(mut self, queue: QueuePolicy) -> Self {
        self.queue = queue;
        self
    }

    /// Sets the batched execution core's micro-batch size K (clamped to
    /// at least 1). The default is [`noisy::DEFAULT_EVENT_BATCH`] = 1 —
    /// batching **off**, the per-event loop — which is the measured
    /// right call below a few thousand processes; K = 4..16 measures
    /// faster from n ≳ 8000 (see the constant's docs for the numbers
    /// and `bench_engine --probe` to re-measure). Purely a performance
    /// knob: every K produces bit-identical reports (pinned by the
    /// batched equivalence matrix), exactly like [`Sim::queue_policy`].
    pub fn event_batch(mut self, k: usize) -> Self {
        self.batch = k.max(1);
        self
    }

    /// Validates the configuration and returns a reusable [`SimRun`]
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, no schedule was selected, or an
    /// option conflicts with the schedule ([`Sim::faults`] or
    /// [`Sim::record_history`] without [`Sim::timing`],
    /// [`Sim::crash_adversary`] with [`Sim::hybrid`], or a hybrid spec
    /// sized for a different process count).
    pub fn build(self) -> SimRun<M> {
        let cfg = self.into_config();
        SimRun {
            lane: Lane::new(&cfg),
            history: Vec::new(),
            cfg,
        }
    }

    /// Shortcut: validates the configuration and starts a `trials`-run
    /// sweep (see [`TrialSet`]).
    pub fn trials(self, trials: u64) -> TrialSet<M> {
        TrialSet::new(self.into_config(), trials)
    }

    fn set_schedule(&mut self, schedule: Schedule) {
        if let Some(existing) = &self.schedule {
            panic!(
                "schedule already selected ({}): timing()/adversary()/hybrid() are mutually exclusive",
                existing.name()
            );
        }
        self.schedule = Some(schedule);
    }

    fn into_config(self) -> SimConfig<M> {
        assert!(
            !self.inputs.is_empty(),
            "Sim needs at least one process: call inputs()"
        );
        let schedule = self
            .schedule
            .expect("Sim needs a schedule: call timing(), adversary(), or hybrid()");
        let schedule = match (schedule, self.faults) {
            (Schedule::Noisy(t), Some(f)) => Schedule::Noisy(t.with_failures(f)),
            (s, Some(_)) => panic!(
                "faults() requires the noisy schedule (timing()), not {}",
                s.name()
            ),
            (s, None) => s,
        };
        if self.record_history {
            assert!(
                matches!(schedule, Schedule::Noisy(_)),
                "record_history() requires the noisy schedule (timing())"
            );
        }
        if self.crash.is_some() {
            assert!(
                !matches!(schedule, Schedule::Hybrid(..)),
                "crash_adversary() is not supported under the hybrid schedule"
            );
        }
        if let Schedule::Hybrid(spec, _) = &schedule {
            assert_eq!(
                spec.len(),
                self.inputs.len(),
                "hybrid spec is for {} processes, inputs have {}",
                spec.len(),
                self.inputs.len()
            );
        }
        SimConfig {
            algorithm: self.algorithm,
            inputs: self.inputs,
            schedule,
            limits: self.limits,
            queue: self.queue,
            crash: self.crash,
            record_history: self.record_history,
            mem: self.mem,
            batch: self.batch,
        }
    }
}

/// Which instance the last run used (for [`SimRun::memory`]).
#[derive(Clone, Copy, PartialEq, Eq)]
enum LastInstance {
    None,
    Lean,
    Boxed,
}

/// One worker's reusable state: the engine scratch plus the instance
/// caches (the monomorphized lean instance is rebuilt in place across
/// runs; other algorithms rebuild a boxed instance per run, keeping the
/// last one for inspection).
struct Lane<M: MemStore> {
    scratch: EngineScratch,
    lean: Option<Instance<LeanConsensus, M>>,
    boxed: Option<Instance<Box<dyn Protocol<M>>, M>>,
    last: LastInstance,
}

impl<M: MemStore> Lane<M> {
    fn new(cfg: &SimConfig<M>) -> Self {
        let mut scratch = EngineScratch::with_queue(cfg.queue);
        scratch.set_event_batch(cfg.batch);
        Lane {
            scratch,
            lean: None,
            boxed: None,
            last: LastInstance::None,
        }
    }
}

/// Reborrows an owned optional crash adversary as the
/// `Option<&mut dyn …>` the drivers take (the explicit `&mut **b` is a
/// coercion site, which `Option::as_deref_mut` is not — the dyn
/// lifetime cannot shrink through the `Option` otherwise).
fn crash_opt(
    crash: &mut Option<Box<dyn CrashAdversary>>,
) -> Option<&mut (dyn CrashAdversary + '_)> {
    match crash {
        Some(boxed) => Some(&mut **boxed),
        None => None,
    }
}

/// Executes one run of `cfg` with the given seed through `lane`'s
/// reusable state. The single dispatch point all public entry paths
/// share.
/// Derives the seed for a run's value-fault stream
/// ([`MemStore::reseed`]) from the run seed: independent of every
/// `(seed, pid, salt)` engine stream and of the protocol coins, by the
/// dedicated salt.
fn fault_seed(seed: u64) -> u64 {
    trial_seed(seed, 0, salts::VALUE_FAULTS)
}

fn run_one<M: MemStore>(
    cfg: &SimConfig<M>,
    lane: &mut Lane<M>,
    seed: u64,
    history: Option<&mut Vec<Event>>,
) -> RunReport {
    match &cfg.schedule {
        Schedule::Noisy(timing) => {
            let mut crash = cfg.crash.as_ref().map(|make| make(seed));
            if cfg.algorithm == Algorithm::Lean {
                // The monomorphized fast path: the protocol inlines
                // into the event loop, and the instance is rebuilt in
                // place (lean is deterministic, so the build ignores
                // the seed). Bit-identical to the boxed build — pinned
                // by tests/sim_equivalence.rs.
                lane.last = LastInstance::Lean;
                let inst = match &mut lane.lean {
                    Some(inst) => {
                        inst.rebuild(&cfg.inputs);
                        inst
                    }
                    slot => slot.insert(setup::build_lean_in(&cfg.inputs, cfg.mem.clone())),
                };
                inst.mem.reseed(fault_seed(seed));
                noisy::drive_noisy(
                    &mut lane.scratch,
                    inst,
                    timing,
                    seed,
                    cfg.limits,
                    crash_opt(&mut crash),
                    history,
                )
            } else {
                lane.last = LastInstance::Boxed;
                let inst = lane.boxed.insert(setup::build_in(
                    cfg.algorithm,
                    &cfg.inputs,
                    seed,
                    cfg.mem.clone(),
                ));
                inst.mem.reseed(fault_seed(seed));
                noisy::drive_noisy(
                    &mut lane.scratch,
                    inst,
                    timing,
                    seed,
                    cfg.limits,
                    crash_opt(&mut crash),
                    history,
                )
            }
        }
        Schedule::Adversarial(make_adv) => {
            let mut adv = make_adv(seed);
            lane.last = LastInstance::Boxed;
            let inst = lane.boxed.insert(setup::build_in(
                cfg.algorithm,
                &cfg.inputs,
                seed,
                cfg.mem.clone(),
            ));
            inst.mem.reseed(fault_seed(seed));
            match &cfg.crash {
                Some(make_crash) => {
                    let mut crash = make_crash(seed);
                    adversarial::drive_adversarial(inst, &mut *adv, &mut *crash, cfg.limits)
                }
                None => adversarial::drive_adversarial(inst, &mut *adv, &mut NoCrashes, cfg.limits),
            }
        }
        Schedule::Hybrid(spec, make_policy) => {
            let mut policy = make_policy(seed);
            lane.last = LastInstance::Boxed;
            let inst = lane.boxed.insert(setup::build_in(
                cfg.algorithm,
                &cfg.inputs,
                seed,
                cfg.mem.clone(),
            ));
            inst.mem.reseed(fault_seed(seed));
            hybrid::drive_hybrid(inst, spec, &mut *policy, cfg.limits)
        }
    }
}

/// A built, reusable simulation handle: call [`SimRun::run`] once per
/// seed. Scratch memory, the lean fast-path instance, and the history
/// buffer are allocated once and reused, so a seed loop's steady state
/// allocates only its `RunReport`s.
///
/// # Example
///
/// ```
/// use nc_engine::sim::Sim;
/// use nc_engine::{setup, Algorithm};
/// use nc_sched::{Noise, TimingModel};
///
/// let inputs = setup::half_and_half(8);
/// let mut sim = Sim::new(Algorithm::Lean)
///     .inputs(inputs.clone())
///     .timing(TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 }))
///     .build();
/// for seed in 0..5 {
///     let report = sim.run(seed);
///     report.check_safety(&inputs).unwrap();
/// }
/// ```
#[must_use = "a SimRun does nothing until run"]
pub struct SimRun<M: MemStore = SimMemory> {
    cfg: SimConfig<M>,
    lane: Lane<M>,
    history: Vec<Event>,
}

impl<M: MemStore> std::fmt::Debug for SimRun<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRun")
            .field("algorithm", &self.cfg.algorithm)
            .field("n", &self.cfg.inputs.len())
            .field("schedule", &self.cfg.schedule.name())
            .field("record_history", &self.cfg.record_history)
            .finish()
    }
}

impl<M: MemStore> SimRun<M> {
    /// Executes one run with the given seed.
    ///
    /// The seed drives every stochastic stream of the run (noise,
    /// failures, start times, protocol coins, and the per-run adversary
    /// factories); identical seeds produce bit-identical reports.
    pub fn run(&mut self, seed: u64) -> RunReport {
        self.history.clear();
        let history = if self.cfg.record_history {
            Some(&mut self.history)
        } else {
            None
        };
        run_one(&self.cfg, &mut self.lane, seed, history)
    }

    /// Executes one run with the given seed after replacing the
    /// per-process inputs, reusing this handle's scratch, queue, and
    /// cached instance exactly like [`SimRun::run`].
    ///
    /// This is the multi-instance service hook: `nc_service` pools one
    /// handle per shard and drives many single-shot instances through
    /// it, each with its own proposals, amortizing allocation the way
    /// [`TrialSet`] pools scratch across trials. The process count is
    /// fixed at build time — `inputs.len()` must match the length the
    /// handle was built with.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the built input width.
    pub fn run_with_inputs(&mut self, seed: u64, inputs: &[Bit]) -> RunReport {
        assert_eq!(
            inputs.len(),
            self.cfg.inputs.len(),
            "run_with_inputs: process count is fixed at build time ({} != {})",
            inputs.len(),
            self.cfg.inputs.len()
        );
        self.cfg.inputs.clear();
        self.cfg.inputs.extend_from_slice(inputs);
        self.run(seed)
    }

    /// The operation history of the last [`SimRun::run`] (empty unless
    /// built with [`Sim::record_history`]).
    pub fn history(&self) -> &[Event] {
        &self.history
    }

    /// The shared memory as the last run left it (sentinels, racing
    /// arrays, backup regions) — for visualization and debugging.
    /// `None` before the first run.
    pub fn memory(&self) -> Option<&M> {
        match self.lane.last {
            LastInstance::None => None,
            LastInstance::Lean => self.lane.lean.as_ref().map(|inst| &inst.mem),
            LastInstance::Boxed => self.lane.boxed.as_ref().map(|inst| &inst.mem),
        }
    }

    /// Per-process protocol rounds as the last run left them (including
    /// undecided processes, which [`RunReport::decision_rounds`] omits).
    /// `None` before the first run.
    pub fn rounds(&self) -> Option<Vec<usize>> {
        use nc_core::ProtocolCore as _;
        match self.lane.last {
            LastInstance::None => None,
            LastInstance::Lean => self
                .lane
                .lean
                .as_ref()
                .map(|inst| inst.procs.iter().map(|p| p.round()).collect()),
            LastInstance::Boxed => self
                .lane
                .boxed
                .as_ref()
                .map(|inst| inst.procs.iter().map(|p| p.round()).collect()),
        }
    }

    /// Converts this handle into a `trials`-run sweep over the same
    /// configuration.
    pub fn into_trials(self, trials: u64) -> TrialSet<M> {
        TrialSet::new(self.cfg, trials)
    }
}

/// How a [`TrialSet`] derives trial `t`'s seed.
enum SeedPlan {
    /// `seed0 + t * stride` (wrapping) — covers the experiment suite's
    /// legacy derivations.
    Affine { seed0: u64, stride: u64 },
    /// An arbitrary map from trial index to seed.
    Custom(SeedFn),
}

impl SeedPlan {
    fn seed_of(&self, t: u64) -> u64 {
        match self {
            SeedPlan::Affine { seed0, stride } => seed0.wrapping_add(t.wrapping_mul(*stride)),
            SeedPlan::Custom(f) => f(t),
        }
    }
}

/// A sweep of independent trials over one simulation configuration,
/// owning scratch pooling, lockstep trial pipelining, and the worker
/// fan-out.
///
/// Trial `t` runs with seed [`TrialSet::seed0`]` + t * `[`stride`] (or
/// a custom [`TrialSet::seed_fn`]); results come back **in trial
/// order**. Parallelism is per-call state: [`TrialSet::threads`] picks
/// this sweep's worker count (0 = all cores) without touching any
/// process-global knob, and [`TrialSet::lanes`] picks the per-worker
/// software-pipelining width for the monomorphized lean fast path.
/// Neither affects any result — the sweep is bit-for-bit identical at
/// every `(threads, lanes)` setting, because each trial is a pure
/// function of its seed (pinned by the determinism regression tests).
///
/// [`stride`]: TrialSet::seed_stride
#[must_use = "a TrialSet does nothing until mapped"]
pub struct TrialSet<M: MemStore = SimMemory> {
    cfg: SimConfig<M>,
    trials: u64,
    seeds: SeedPlan,
    threads: usize,
    lanes: usize,
}

impl<M: MemStore> std::fmt::Debug for TrialSet<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrialSet")
            .field("algorithm", &self.cfg.algorithm)
            .field("n", &self.cfg.inputs.len())
            .field("trials", &self.trials)
            .field("threads", &self.threads)
            .field("lanes", &self.lanes)
            .finish()
    }
}

impl<M: MemStore> TrialSet<M> {
    fn new(cfg: SimConfig<M>, trials: u64) -> Self {
        // A sweep has nowhere to hand histories back (reports don't
        // carry them), so a recording request would be a silent no-op —
        // reject it like the builder's other conflicting options.
        assert!(
            !cfg.record_history,
            "record_history() is not supported by TrialSet sweeps \
             (reports don't carry histories); use a SimRun per seed instead"
        );
        TrialSet {
            cfg,
            trials,
            seeds: SeedPlan::Affine {
                seed0: 0,
                stride: 1,
            },
            threads: 0,
            lanes: PIPELINE_LANES,
        }
    }

    /// Sets the base seed (trial `t` runs with `seed0 + t * stride`).
    /// Default 0.
    ///
    /// # Panics
    ///
    /// Panics if [`TrialSet::seed_fn`] was already set — the custom
    /// derivation would silently discard this value otherwise.
    pub fn seed0(mut self, seed0: u64) -> Self {
        self.seeds = match self.seeds {
            SeedPlan::Affine { stride, .. } => SeedPlan::Affine { seed0, stride },
            SeedPlan::Custom(_) => {
                panic!("seed0() conflicts with an earlier seed_fn(): pick one derivation")
            }
        };
        self
    }

    /// Sets the per-trial seed stride (trial `t` runs with
    /// `seed0 + t * stride`). Default 1.
    ///
    /// # Panics
    ///
    /// Panics if [`TrialSet::seed_fn`] was already set — the custom
    /// derivation would silently discard this value otherwise.
    pub fn seed_stride(mut self, stride: u64) -> Self {
        self.seeds = match self.seeds {
            SeedPlan::Affine { seed0, .. } => SeedPlan::Affine { seed0, stride },
            SeedPlan::Custom(_) => {
                panic!("seed_stride() conflicts with an earlier seed_fn(): pick one derivation")
            }
        };
        self
    }

    /// Replaces the affine seed derivation with an arbitrary map from
    /// trial index to seed (overrides [`TrialSet::seed0`] /
    /// [`TrialSet::seed_stride`]).
    ///
    /// New code should derive per-trial seeds with
    /// [`nc_sched::rng::trial_seed`]; this hook also carries the
    /// experiment suite's frozen legacy derivations.
    pub fn seed_fn(mut self, f: impl Fn(u64) -> u64 + Send + Sync + 'static) -> Self {
        self.seeds = SeedPlan::Custom(Box::new(f));
        self
    }

    /// Sets this sweep's worker-thread count (0 = one per available
    /// core, the default). Purely a performance knob: results are
    /// bit-identical at every setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the software-pipelining width: each worker advances up to
    /// `lanes` trials in lockstep through the batch driver (lean +
    /// noisy configurations only; others run lanes sequentially).
    /// Purely a performance knob — see [`PIPELINE_LANES`] for the
    /// measured trade. Default [`PIPELINE_LANES`].
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Runs every trial and maps its report through `f`, returning the
    /// results in trial order.
    pub fn map<T, F>(self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RunReport) -> T + Sync,
    {
        let TrialSet {
            cfg,
            trials,
            seeds,
            threads,
            lanes,
        } = self;
        par_spans(threads, trials, |lo, hi| {
            run_span(&cfg, lo, hi, lanes, &seeds, &f)
        })
    }

    /// Runs every trial and returns the raw reports in trial order.
    pub fn reports(self) -> Vec<RunReport> {
        self.map(|report| report)
    }
}

/// Resolves a worker-count knob (0 = one worker per available core).
pub fn resolve_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `0..trials` into contiguous spans (a few per worker, to
/// smooth imbalance from uneven trial cost without shrinking spans so
/// far that per-span state reuse stops paying) and maps each span
/// through `work` across `threads` workers (0 = all cores), returning
/// the concatenated results **in span order** — i.e. in trial order
/// whenever `work(lo, hi)` returns its trials in order.
///
/// This is the one chunked fan-out under every sweep in the workspace:
/// [`TrialSet::map`] drives it with the engine's span runner, and the
/// experiment harness's generic trial helpers wrap it for non-engine
/// work. With one worker (or one trial) it degenerates to a plain
/// inline call — no threads spawned. Workers pull spans from a shared
/// queue, so the span *assignment* is nondeterministic, but the
/// stitched output order never is.
pub fn par_spans<T, F>(threads: usize, trials: u64, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, u64) -> Vec<T> + Sync,
{
    if trials == 0 {
        return Vec::new();
    }
    let workers = resolve_threads(threads).min(trials as usize).max(1);
    if workers == 1 {
        return work(0, trials);
    }
    let chunk = trials.div_ceil(workers as u64 * 4).max(1);
    let spans: Vec<(u64, u64)> = (0..trials)
        .step_by(chunk as usize)
        .map(|lo| (lo, (lo + chunk).min(trials)))
        .collect();
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(spans.len()));
    std::thread::scope(|s| {
        for _ in 0..workers.min(spans.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(lo, hi)) = spans.get(i) else { break };
                let out = work(lo, hi);
                done.lock().expect("sweep worker panicked").push((i, out));
            });
        }
    });
    let mut parts = done.into_inner().expect("sweep worker panicked");
    parts.sort_unstable_by_key(|&(i, _)| i);
    parts.into_iter().flat_map(|(_, out)| out).collect()
}

/// Runs trials `lo..hi` on the current thread, through the lockstep
/// batch driver when the configuration allows it and `lanes > 1`.
fn run_span<M: MemStore, T, F>(
    cfg: &SimConfig<M>,
    lo: u64,
    hi: u64,
    lanes: usize,
    seeds: &SeedPlan,
    f: &F,
) -> Vec<T>
where
    F: Fn(RunReport) -> T,
{
    if lanes > 1 && cfg.lean_batch_eligible() {
        return run_span_batch(cfg, lo, hi, lanes, seeds, f);
    }
    let mut lane = Lane::new(cfg);
    (lo..hi)
        .map(|t| f(run_one(cfg, &mut lane, seeds.seed_of(t), None)))
        .collect()
}

/// The software-pipelined span: advance up to `lanes` monomorphized
/// lean trials in lockstep (see [`noisy::drive_noisy_batch`]'s docs for
/// the mechanism; per-trial results are bit-identical to sequential
/// execution by construction).
fn run_span_batch<M: MemStore, T, F>(
    cfg: &SimConfig<M>,
    lo: u64,
    hi: u64,
    lanes: usize,
    seeds: &SeedPlan,
    f: &F,
) -> Vec<T>
where
    F: Fn(RunReport) -> T,
{
    let Schedule::Noisy(timing) = &cfg.schedule else {
        unreachable!("batch span requires the noisy schedule");
    };
    let width = lanes.min((hi - lo) as usize);
    let mut scratches: Vec<EngineScratch> = (0..width)
        .map(|_| {
            let mut s = EngineScratch::with_queue(cfg.queue);
            s.set_event_batch(cfg.batch);
            s
        })
        .collect();
    let mut insts: Vec<Instance<LeanConsensus, M>> = (0..width)
        .map(|_| setup::build_lean_in(&cfg.inputs, cfg.mem.clone()))
        .collect();
    let mut lane_seeds = vec![0u64; width];
    let mut out = Vec::with_capacity((hi - lo) as usize);
    let mut t = lo;
    while t < hi {
        let g = ((hi - t) as usize).min(width);
        for (j, seed) in lane_seeds[..g].iter_mut().enumerate() {
            *seed = seeds.seed_of(t + j as u64);
        }
        for (inst, &seed) in insts[..g].iter_mut().zip(&lane_seeds[..g]) {
            inst.rebuild(&cfg.inputs);
            inst.mem.reseed(fault_seed(seed));
        }
        let reports = noisy::drive_noisy_batch(
            &mut scratches[..g],
            &mut insts[..g],
            timing,
            &lane_seeds[..g],
            cfg.limits,
        );
        out.extend(reports.into_iter().map(f));
        t += g as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunOutcome;
    use nc_sched::adversary::{LeaderKiller, RoundRobin};
    use nc_sched::hybrid::WritePreemptor;
    use nc_sched::Noise;

    fn exp_timing() -> TimingModel {
        TimingModel::figure1(Noise::Exponential { mean: 1.0 })
    }

    #[test]
    fn noisy_run_decides_and_reuses_state() {
        let inputs = setup::half_and_half(8);
        let mut sim = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(exp_timing())
            .build();
        let first = sim.run(3);
        assert_eq!(first.outcome, RunOutcome::AllDecided);
        first.check_safety(&inputs).unwrap();
        // Re-running the same seed through the reused handle must be
        // bit-identical (state fully re-seeded per run).
        assert_eq!(sim.run(3), first);
        assert!(sim.memory().is_some());
    }

    #[test]
    fn run_with_inputs_matches_fresh_build_per_input_vector() {
        // A pooled handle cycling through instances with differing
        // proposals must report exactly what a dedicated handle built
        // for those proposals would — the nc_service amortization
        // contract.
        let n = 6;
        let input_sets: Vec<Vec<Bit>> = vec![
            vec![Bit::Zero; n],
            vec![Bit::One; n],
            setup::half_and_half(n),
            (0..n)
                .map(|i| if i % 3 == 0 { Bit::One } else { Bit::Zero })
                .collect(),
        ];
        let mut pooled = Sim::new(Algorithm::Lean)
            .inputs(vec![Bit::Zero; n])
            .timing(exp_timing())
            .build();
        for (k, inputs) in input_sets.iter().enumerate() {
            let seed = 100 + k as u64;
            let pooled_report = pooled.run_with_inputs(seed, inputs);
            let fresh_report = Sim::new(Algorithm::Lean)
                .inputs(inputs.clone())
                .timing(exp_timing())
                .build()
                .run(seed);
            assert_eq!(pooled_report, fresh_report, "inputs set {k}");
            pooled_report.check_safety(inputs).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "process count is fixed")]
    fn run_with_inputs_rejects_width_change() {
        let mut sim = Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(4))
            .timing(exp_timing())
            .build();
        sim.run_with_inputs(1, &[Bit::One; 5]);
    }

    #[test]
    fn boxed_algorithms_run_and_memory_is_visible() {
        for alg in [
            Algorithm::Skipping,
            Algorithm::Randomized,
            Algorithm::Bounded { r_max: 8 },
            Algorithm::Backup,
        ] {
            let inputs = setup::half_and_half(4);
            let mut sim = Sim::new(alg)
                .inputs(inputs.clone())
                .timing(exp_timing())
                .build();
            let report = sim.run(7);
            assert_eq!(report.outcome, RunOutcome::AllDecided, "{alg:?}");
            report.check_safety(&inputs).unwrap();
            assert!(sim.memory().is_some());
        }
    }

    #[test]
    fn history_recording_round_trips() {
        let mut sim = Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(6))
            .timing(exp_timing())
            .record_history()
            .build();
        let report = sim.run(8);
        assert_eq!(sim.history().len(), report.total_ops as usize);
        // The next run replaces the history rather than appending.
        let report2 = sim.run(9);
        assert_eq!(sim.history().len(), report2.total_ops as usize);
    }

    #[test]
    fn crash_adversary_factory_is_fresh_per_run() {
        let mut sim = Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(6))
            .timing(exp_timing())
            .crash_adversary(|_| LeaderKiller::new(2, 1))
            .build();
        let a = sim.run(5);
        let b = sim.run(5);
        assert_eq!(a, b, "stateful adversary must be rebuilt per run");
    }

    #[test]
    fn adversarial_schedule_runs() {
        let inputs = setup::unanimous(5, Bit::One);
        let report = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .adversary(|_| RoundRobin::new())
            .build()
            .run(0);
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        assert!(report.ops.iter().all(|&o| o == 8));
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn hybrid_schedule_honours_theorem_14() {
        let inputs = setup::alternating(4);
        let report = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .hybrid(HybridSpec::uniform(4, 8), |_| WritePreemptor)
            .build()
            .run(0);
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        assert!(report.ops.iter().all(|&o| o <= 12));
    }

    #[test]
    fn trials_are_pure_functions_of_their_seed() {
        let inputs = setup::half_and_half(10);
        let sweep = |threads: usize, lanes: usize| {
            Sim::new(Algorithm::Lean)
                .inputs(inputs.clone())
                .timing(exp_timing())
                .limits(Limits::first_decision())
                .trials(24)
                .seed0(100)
                .seed_stride(13)
                .threads(threads)
                .lanes(lanes)
                .reports()
        };
        let reference = sweep(1, 1);
        assert_eq!(reference.len(), 24);
        for (threads, lanes) in [(1, 2), (1, 4), (2, 1), (4, 3), (0, 2)] {
            assert_eq!(sweep(threads, lanes), reference, "{threads} × {lanes}");
        }
        // And the affine seeds match per-seed SimRun calls.
        let mut sim = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(exp_timing())
            .limits(Limits::first_decision())
            .build();
        for (t, report) in reference.iter().enumerate() {
            assert_eq!(*report, sim.run(100 + 13 * t as u64), "trial {t}");
        }
    }

    #[test]
    fn seed_fn_overrides_affine_derivation() {
        let inputs = setup::half_and_half(6);
        let custom = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(exp_timing())
            .trials(5)
            .seed_fn(|t| 1000 + t * t)
            .threads(1)
            .reports();
        let mut sim = Sim::new(Algorithm::Lean)
            .inputs(inputs)
            .timing(exp_timing())
            .build();
        for (t, report) in custom.iter().enumerate() {
            let t = t as u64;
            assert_eq!(*report, sim.run(1000 + t * t));
        }
    }

    #[test]
    fn zero_trials_is_empty() {
        let out = Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(2))
            .timing(exp_timing())
            .trials(0)
            .reports();
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "needs a schedule")]
    fn build_without_schedule_panics() {
        let _ = Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(2))
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn build_without_inputs_panics() {
        let _ = Sim::new(Algorithm::Lean).timing(exp_timing()).build();
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn double_schedule_panics() {
        let _ = Sim::new(Algorithm::Lean)
            .timing(exp_timing())
            .adversary(|_| RoundRobin::new());
    }

    #[test]
    #[should_panic(expected = "conflicts with an earlier seed_fn")]
    fn seed0_after_seed_fn_panics() {
        let _ = Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(2))
            .timing(exp_timing())
            .trials(3)
            .seed_fn(|t| t)
            .seed0(7);
    }

    #[test]
    #[should_panic(expected = "not supported by TrialSet")]
    fn record_history_in_a_sweep_panics() {
        let _ = Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(2))
            .timing(exp_timing())
            .record_history()
            .trials(3);
    }

    #[test]
    #[should_panic(expected = "requires the noisy schedule")]
    fn faults_without_timing_panics() {
        let _ = Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(2))
            .adversary(|_| RoundRobin::new())
            .faults(FailureModel::Random { per_op: 0.1 })
            .build();
    }

    #[test]
    #[should_panic(expected = "not supported under the hybrid")]
    fn crash_with_hybrid_panics() {
        let _ = Sim::new(Algorithm::Lean)
            .inputs(setup::alternating(4))
            .hybrid(HybridSpec::uniform(4, 8), |_| WritePreemptor)
            .crash_adversary(|_| LeaderKiller::new(1, 1))
            .build();
    }

    #[test]
    fn faults_fold_into_the_timing_model() {
        let inputs = setup::alternating(4);
        let a = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(exp_timing())
            .faults(FailureModel::Random { per_op: 0.9 })
            .build()
            .run(9);
        let b = Sim::new(Algorithm::Lean)
            .inputs(inputs)
            .timing(exp_timing().with_failures(FailureModel::Random { per_op: 0.9 }))
            .build()
            .run(9);
        assert_eq!(a, b);
    }
}
