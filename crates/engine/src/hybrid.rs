//! The hybrid quantum + priority uniprocessor driver (§3.2, §7).
//!
//! One process runs at a time. The driver tracks the running process's
//! progress through its scheduling quantum and computes, before every
//! operation, the set of processes the model allows to run next
//! ([`nc_sched::HybridSpec::legal_next`]); a [`nc_sched::HybridPolicy`]
//! — the adversary — picks among them. Theorem 14 promises that with
//! quantum ≥ 8 every process running lean-consensus decides within 12
//! operations, *whatever* the policy does; the test suite and experiment
//! E5 check exactly that bound.

use nc_core::{Protocol, Status};
use nc_memory::MemStore;
use nc_memory::Op;
use nc_sched::hybrid::{HybridPolicy, HybridSpec, HybridView};

use crate::report::{Limits, RunOutcome, RunReport};
use crate::setup::Instance;

/// The hybrid-uniprocessor driver beneath [`crate::sim::Sim::hybrid`]:
/// runs an instance on a hybrid-scheduled uniprocessor.
///
/// Prefer [`crate::sim::Sim`] — this internal is exported so the
/// equivalence suites can pin the builder against it directly.
///
/// # Panics
///
/// Panics if `spec` is sized for a different process count than the
/// instance, or if the policy picks an illegal process.
pub fn drive_hybrid<M: MemStore, P: Protocol<M>>(
    inst: &mut Instance<P, M>,
    spec: &HybridSpec,
    policy: &mut dyn HybridPolicy,
    limits: Limits,
) -> RunReport {
    let n = inst.procs.len();
    assert_eq!(
        spec.len(),
        n,
        "spec is for {} processes, instance has {n}",
        spec.len()
    );

    let mut decided = vec![false; n];
    let mut decision_rounds: Vec<Option<usize>> = vec![None; n];
    let mut op_counts = vec![0u64; n];
    let mut total_ops = 0u64;
    let mut first_decision_round = None;
    let mut outcome: Option<RunOutcome> = None;

    let mut current: Option<usize> = None;
    let mut used_in_quantum: u32 = 0;
    let mut ever_scheduled = vec![false; n];

    loop {
        let runnable: Vec<bool> = (0..n).map(|i| !decided[i]).collect();
        if runnable.iter().all(|&r| !r) {
            break;
        }
        if total_ops >= limits.max_ops {
            outcome = Some(RunOutcome::OpCapReached);
            break;
        }

        let legal = spec.legal_next(current, used_in_quantum, &runnable);
        assert!(!legal.is_empty(), "runnable processes but no legal move");

        let rounds: Vec<usize> = inst.procs.iter().map(|p| p.round()).collect();
        let pending_write: Vec<bool> = inst
            .procs
            .iter()
            .map(|p| matches!(p.status(), Status::Pending(Op::Write(_, _))))
            .collect();
        let Some(pick) = policy.pick(HybridView {
            current,
            legal: &legal,
            round: &rounds,
            steps: &op_counts,
            pending_write: &pending_write,
        }) else {
            outcome = Some(RunOutcome::ScheduleExhausted);
            break;
        };
        assert!(
            legal.contains(&pick),
            "policy picked illegal process {pick} (legal: {legal:?})"
        );

        // Context switch bookkeeping: a newly scheduled process begins a
        // quantum (its first scheduling may start mid-quantum, §3.2).
        if current != Some(pick) {
            used_in_quantum = spec.used_at_schedule(pick, !ever_scheduled[pick]);
            ever_scheduled[pick] = true;
            current = Some(pick);
        }

        let Status::Pending(op) = inst.procs[pick].status() else {
            unreachable!("legal process must be pending")
        };
        let observed = inst.mem.exec(op);
        inst.procs[pick].advance(observed);
        total_ops += 1;
        op_counts[pick] += 1;
        used_in_quantum += 1;

        if let Status::Decided(_) = inst.procs[pick].status() {
            decided[pick] = true;
            let round = inst.procs[pick].round();
            decision_rounds[pick] = Some(round);
            if first_decision_round.is_none() {
                first_decision_round = Some(round);
                if limits.stop_at_first_decision {
                    outcome = Some(RunOutcome::FirstDecision);
                    break;
                }
            }
        }
    }

    let outcome = outcome.unwrap_or(RunOutcome::AllDecided);

    RunReport {
        n,
        outcome,
        decisions: inst.procs.iter().map(|p| p.status().decision()).collect(),
        decision_rounds,
        ops: op_counts,
        halted: vec![false; n],
        first_decision_round,
        first_decision_time: None,
        total_ops,
        sim_time: 0.0,
        max_round: inst.procs.iter().map(|p| p.round()).max().unwrap_or(0),
    }
}

#[cfg(test)]
// These unit tests pin the drive_hybrid internal directly (the builder
// side is pinned by tests/sim_equivalence.rs).
mod tests {
    use super::*;
    use crate::setup::{self, Algorithm};
    use nc_memory::Bit;
    use nc_sched::hybrid::{BenignHybrid, RandomHybrid, WritePreemptor};
    use nc_sched::stream_rng;

    /// Theorem 14's bound: quantum ≥ 8 ⇒ every process decides within 12
    /// operations.
    fn assert_theorem14(report: &RunReport, label: &str) {
        assert_eq!(report.outcome, RunOutcome::AllDecided, "{label}");
        assert!(
            report.ops.iter().all(|&o| o <= 12),
            "{label}: some process exceeded 12 ops: {:?}",
            report.ops
        );
    }

    #[test]
    fn theorem14_benign_policy() {
        for n in [1, 2, 4, 8] {
            let inputs = setup::half_and_half(n);
            let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
            let spec = HybridSpec::uniform(n, 8);
            let report = drive_hybrid(
                &mut inst,
                &spec,
                &mut BenignHybrid,
                Limits::run_to_completion(),
            );
            assert_theorem14(&report, &format!("benign n={n}"));
            report.check_safety(&inputs).unwrap();
        }
    }

    #[test]
    fn theorem14_adversarial_write_preemptor() {
        for n in [2, 3, 4, 6] {
            for quantum in [8u32, 9, 12] {
                let inputs = setup::alternating(n);
                let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
                let spec = HybridSpec::uniform(n, quantum);
                let report = drive_hybrid(
                    &mut inst,
                    &spec,
                    &mut WritePreemptor,
                    Limits::run_to_completion(),
                );
                assert_theorem14(&report, &format!("preemptor n={n} q={quantum}"));
                report.check_safety(&inputs).unwrap();
            }
        }
    }

    #[test]
    fn theorem14_with_burned_initial_quanta() {
        // Every process has already burned its whole first quantum on
        // other work (§3.2 allows this): the bound must still hold.
        for n in [2, 4] {
            let inputs = setup::alternating(n);
            let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
            let spec = HybridSpec::uniform(n, 8).with_initial_used(vec![8; n]);
            let report = drive_hybrid(
                &mut inst,
                &spec,
                &mut WritePreemptor,
                Limits::run_to_completion(),
            );
            assert_theorem14(&report, &format!("burned n={n}"));
        }
    }

    #[test]
    fn theorem14_priority_ladder() {
        let n = 4;
        let inputs = setup::alternating(n);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
        let spec = HybridSpec::ladder(n, 8);
        let report = drive_hybrid(
            &mut inst,
            &spec,
            &mut WritePreemptor,
            Limits::run_to_completion(),
        );
        assert_theorem14(&report, "ladder");
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn random_hybrid_policy_is_safe_and_decides() {
        for seed in 0..10 {
            let n = 5;
            let inputs = setup::half_and_half(n);
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let spec = HybridSpec::uniform(n, 8);
            let mut policy = RandomHybrid::new(stream_rng(seed, 0, 4));
            let report = drive_hybrid(&mut inst, &spec, &mut policy, Limits::run_to_completion());
            assert_theorem14(&report, &format!("random seed={seed}"));
            report.check_safety(&inputs).unwrap();
        }
    }

    #[test]
    fn small_quantum_can_exceed_the_bound() {
        // With quantum < 8 the theorem's guarantee evaporates: the
        // adversary can preempt mid-round and stretch the race. We only
        // assert that *some* configuration exceeds 12 ops (the bound is
        // specific to quantum >= 8), not that all do.
        let mut exceeded = false;
        for quantum in 1..8u32 {
            for n in [2usize, 3, 4] {
                let inputs = setup::alternating(n);
                let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
                let spec = HybridSpec::uniform(n, quantum);
                let report = drive_hybrid(
                    &mut inst,
                    &spec,
                    &mut WritePreemptor,
                    Limits::run_to_completion().with_max_ops(1_000_000),
                );
                report.check_safety(&inputs).unwrap();
                if report.ops.iter().any(|&o| o > 12) || !report.outcome.decided() {
                    exceeded = true;
                }
            }
        }
        assert!(
            exceeded,
            "small quanta never stressed the bound — adversary too weak?"
        );
    }

    #[test]
    fn solo_process_on_uniprocessor() {
        let mut inst = setup::build(Algorithm::Lean, &[Bit::One], 0);
        let spec = HybridSpec::uniform(1, 8);
        let report = drive_hybrid(
            &mut inst,
            &spec,
            &mut BenignHybrid,
            Limits::run_to_completion(),
        );
        assert_eq!(report.decisions, vec![Some(Bit::One)]);
        assert_eq!(report.ops, vec![8]);
    }

    #[test]
    #[should_panic(expected = "spec is for")]
    fn mismatched_spec_panics() {
        let mut inst = setup::build(Algorithm::Lean, &[Bit::One], 0);
        let spec = HybridSpec::uniform(3, 8);
        drive_hybrid(
            &mut inst,
            &spec,
            &mut BenignHybrid,
            Limits::run_to_completion(),
        );
    }
}
