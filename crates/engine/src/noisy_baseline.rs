//! The original (naive) noisy-scheduling driver, kept as the benchmark
//! baseline for the optimized [`crate::noisy`] engine.
//!
//! This is the straightforward implementation: a
//! `std::collections::BinaryHeap` event queue paying a full pop + push
//! per event, per-trial construction of every `ProcState` and RNG
//! stream, and one `Noise::sample` dispatch per event. It is **not**
//! compiled into normal builds — only under `cfg(test)` (for the
//! equivalence suite pinning the optimized engine to it bit-for-bit) and
//! under the `baseline` feature (for `nc-bench`'s speedup benches).
//!
//! Keep this file boring. Its value is being obviously correct and
//! obviously naive.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;

use nc_core::{ProtocolCore as _, Status};
use nc_memory::Event;
use nc_sched::adversary::{CrashAdversary, ProcView};
use nc_sched::rng::salts;
use nc_sched::{stream_rng, TimingModel};

use crate::report::{Limits, RunOutcome, RunReport};
use crate::setup::Instance;

/// An operation scheduled to occur at a simulated time, ordered for a
/// min-heap on `(time, seq)`.
#[derive(Debug)]
struct Scheduled {
    time: f64,
    seq: u64,
    pid: usize,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct ProcState {
    rng_noise: SmallRng,
    rng_failure: SmallRng,
    clock: f64,
    next_op: u64,
    halted: bool,
    decided: bool,
}

/// [`crate::noisy::drive_noisy`] without crash/history hooks, naive
/// edition. Identical observable
/// behavior, unoptimized implementation.
pub fn run_noisy_baseline(
    inst: &mut Instance,
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
) -> RunReport {
    run_noisy_with_baseline(inst, timing, seed, limits, None, None)
}

/// [`crate::noisy::drive_noisy`], naive edition.
pub fn run_noisy_with_baseline(
    inst: &mut Instance,
    timing: &TimingModel,
    seed: u64,
    limits: Limits,
    mut crash: Option<&mut dyn CrashAdversary>,
    mut history: Option<&mut Vec<Event>>,
) -> RunReport {
    let n = inst.procs.len();
    let mut queue: BinaryHeap<Scheduled> = BinaryHeap::with_capacity(n);
    let mut seq = 0u64;
    let mut states: Vec<ProcState> = (0..n)
        .map(|pid| {
            let mut rng_start = stream_rng(seed, pid as u64, salts::START);
            ProcState {
                rng_noise: stream_rng(seed, pid as u64, salts::NOISE),
                rng_failure: stream_rng(seed, pid as u64, salts::FAILURE),
                clock: timing.start_for(pid, &mut rng_start),
                next_op: 1,
                halted: false,
                decided: false,
            }
        })
        .collect();

    // Prime the queue with each process's first operation.
    for pid in 0..n {
        schedule_next(pid, &mut states, &mut queue, inst, timing, &mut seq);
    }

    let mut total_ops = 0u64;
    let mut sim_time = 0.0f64;
    let mut decision_rounds: Vec<Option<usize>> = vec![None; n];
    let mut op_counts: Vec<u64> = vec![0; n];
    let mut first_decision_round: Option<usize> = None;
    let mut first_decision_time: Option<f64> = None;
    let mut outcome: Option<RunOutcome> = None;
    let mut live_undecided = states.iter().filter(|s| !s.halted).count();

    'main: while let Some(ev) = queue.pop() {
        let pid = ev.pid;
        if states[pid].halted || states[pid].decided {
            continue;
        }
        if total_ops >= limits.max_ops {
            outcome = Some(RunOutcome::OpCapReached);
            break;
        }
        sim_time = ev.time;

        // Execute exactly one operation of `pid`.
        let Status::Pending(op) = inst.procs[pid].status() else {
            // Defensive: decided processes are filtered above.
            continue;
        };
        let observed = inst.mem.exec(op);
        if let Some(h) = history.as_deref_mut() {
            h.push(Event {
                time: ev.time,
                pid: nc_memory::Pid::new(pid as u32),
                op,
                observed,
            });
        }
        inst.procs[pid].advance(observed);
        total_ops += 1;
        op_counts[pid] += 1;

        // Decision?
        if let Status::Decided(_) = inst.procs[pid].status() {
            states[pid].decided = true;
            live_undecided -= 1;
            let round = inst.procs[pid].round();
            decision_rounds[pid] = Some(round);
            if first_decision_round.is_none() {
                first_decision_round = Some(round);
                first_decision_time = Some(ev.time);
                if limits.stop_at_first_decision {
                    outcome = Some(RunOutcome::FirstDecision);
                    break 'main;
                }
            }
        } else {
            schedule_next(pid, &mut states, &mut queue, inst, timing, &mut seq);
            if states[pid].halted {
                live_undecided -= 1; // halted by H_ij while scheduling
            }
        }

        // Adaptive crashes.
        if let Some(crash) = crash.as_deref_mut() {
            live_undecided -= apply_crashes(crash, inst, &mut states, &op_counts);
        }

        if live_undecided == 0 {
            break;
        }
    }

    let outcome = outcome.unwrap_or_else(|| {
        if states.iter().any(|s| s.decided) {
            RunOutcome::AllDecided
        } else {
            RunOutcome::AllHalted
        }
    });

    RunReport {
        n,
        outcome,
        decisions: inst.procs.iter().map(|p| p.status().decision()).collect(),
        decision_rounds,
        ops: op_counts,
        halted: states.iter().map(|s| s.halted).collect(),
        first_decision_round,
        first_decision_time,
        total_ops,
        sim_time,
        max_round: inst.procs.iter().map(|p| p.round()).max().unwrap_or(0),
    }
}

fn schedule_next(
    pid: usize,
    states: &mut [ProcState],
    queue: &mut BinaryHeap<Scheduled>,
    inst: &Instance,
    timing: &TimingModel,
    seq: &mut u64,
) {
    let Status::Pending(op) = inst.procs[pid].status() else {
        return;
    };
    let state = &mut states[pid];
    let op_index = state.next_op;
    state.next_op += 1;
    let increment = {
        // Split borrows: the two RNG streams are distinct fields.
        let ProcState {
            rng_noise,
            rng_failure,
            ..
        } = &mut *state;
        timing.op_increment(pid, op_index, op.kind(), rng_noise, rng_failure)
    };
    match increment {
        None => {
            state.halted = true; // H_ij = ∞: the op never occurs
        }
        Some(inc) => {
            state.clock += inc;
            *seq += 1;
            queue.push(Scheduled {
                time: state.clock,
                seq: *seq,
                pid,
            });
        }
    }
}

/// Applies adaptive crashes; returns how many live undecided processes
/// were halted.
fn apply_crashes(
    crash: &mut dyn CrashAdversary,
    inst: &Instance,
    states: &mut [ProcState],
    op_counts: &[u64],
) -> usize {
    let enabled: Vec<bool> = states.iter().map(|s| !s.halted && !s.decided).collect();
    if !enabled.iter().any(|&e| e) {
        return 0;
    }
    let rounds: Vec<usize> = inst.procs.iter().map(|p| p.round()).collect();
    let victims = crash.crash_now(ProcView {
        enabled: &enabled,
        round: &rounds,
        steps: op_counts,
    });
    let mut newly_halted = 0;
    for v in victims {
        if v < states.len() && !states[v].halted && !states[v].decided {
            states[v].halted = true;
            newly_halted += 1;
        }
    }
    newly_halted
}
