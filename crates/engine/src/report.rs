//! Run limits and the common result type of all drivers.

use std::fmt;

use nc_core::invariants::{
    check_agreement, check_decision_spread, check_validity, SafetyViolation,
};
use nc_memory::Bit;

/// Resource caps for a single run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Limits {
    /// Stop after this many executed operations (safety net against
    /// non-terminating schedules — which genuinely exist, per FLP).
    pub max_ops: u64,
    /// Stop as soon as the first process decides. This is what the
    /// paper's Figure 1 measures ("the round at which the first process
    /// terminates") and it makes large-`n` sweeps dramatically cheaper.
    pub stop_at_first_decision: bool,
}

impl Limits {
    /// Run to full completion with the default op budget.
    pub const fn run_to_completion() -> Self {
        Limits {
            max_ops: 500_000_000,
            stop_at_first_decision: false,
        }
    }

    /// Stop at the first decision (Figure 1 semantics).
    pub const fn first_decision() -> Self {
        Limits {
            max_ops: 500_000_000,
            stop_at_first_decision: true,
        }
    }

    /// Replaces the operation budget (builder-style).
    pub const fn with_max_ops(mut self, max_ops: u64) -> Self {
        self.max_ops = max_ops;
        self
    }
}

impl Default for Limits {
    fn default() -> Self {
        Limits::run_to_completion()
    }
}

/// How a run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Every live process decided.
    AllDecided,
    /// The first decision happened and
    /// [`Limits::stop_at_first_decision`] was set.
    FirstDecision,
    /// Every process halted or crashed before deciding.
    AllHalted,
    /// The operation budget ran out with undecided processes left — a
    /// non-terminating (or not-yet-terminated) schedule.
    OpCapReached,
    /// The schedule source was exhausted (scripted adversaries).
    ScheduleExhausted,
}

impl RunOutcome {
    /// Whether the run ended with at least one decision and no budget
    /// exhaustion.
    pub fn decided(self) -> bool {
        matches!(self, RunOutcome::AllDecided | RunOutcome::FirstDecision)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunOutcome::AllDecided => "all processes decided",
            RunOutcome::FirstDecision => "first decision reached",
            RunOutcome::AllHalted => "all processes halted",
            RunOutcome::OpCapReached => "operation budget exhausted",
            RunOutcome::ScheduleExhausted => "schedule exhausted",
        };
        f.write_str(s)
    }
}

/// Everything a driver observed in one run.
///
/// `PartialEq` compares every field, including times, **exactly** — the
/// equivalence and determinism suites rely on bit-for-bit equality
/// between engine variants and between serial and parallel sweeps.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Number of processes.
    pub n: usize,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Per-process decision (None = undecided, e.g. halted or cut off).
    pub decisions: Vec<Option<Bit>>,
    /// Per-process round at decision time (None if undecided).
    pub decision_rounds: Vec<Option<usize>>,
    /// Per-process operations executed.
    pub ops: Vec<u64>,
    /// Per-process halted/crashed flags.
    pub halted: Vec<bool>,
    /// Round of the earliest decision, if any — the paper's Figure 1
    /// metric.
    pub first_decision_round: Option<usize>,
    /// Simulated time of the earliest decision (timed driver only;
    /// `None` for untimed drivers and undecided runs).
    pub first_decision_time: Option<f64>,
    /// Total operations executed across all processes.
    pub total_ops: u64,
    /// Final simulated time (timed driver; 0 for untimed drivers).
    pub sim_time: f64,
    /// Highest protocol round any process (decided or not) had reached
    /// when the run ended. For decided runs this matches the last
    /// decision round; for capped runs it is the progress measure the
    /// adversary tournament scores, since undecided processes have no
    /// entry in `decision_rounds`.
    pub max_round: usize,
}

impl RunReport {
    /// The agreed value, if any process decided.
    pub fn agreement_value(&self) -> Option<Bit> {
        self.decisions.iter().flatten().next().copied()
    }

    /// Number of processes that decided.
    pub fn decided_count(&self) -> usize {
        self.decisions.iter().flatten().count()
    }

    /// Largest per-process operation count — the paper's per-process
    /// work measure.
    pub fn max_ops_per_process(&self) -> u64 {
        self.ops.iter().copied().max().unwrap_or(0)
    }

    /// Round of the latest decision, if any.
    pub fn last_decision_round(&self) -> Option<usize> {
        self.decision_rounds.iter().flatten().max().copied()
    }

    /// Checks agreement, validity (against `inputs`), and the Lemma 4
    /// decision-spread bound on this run's outcome.
    ///
    /// Decision spread is only meaningful when the run was driven to
    /// completion; with [`Limits::stop_at_first_decision`] the spread
    /// check is skipped (processes were cut off mid-round).
    ///
    /// # Errors
    ///
    /// Returns the first [`SafetyViolation`] found.
    pub fn check_safety(&self, inputs: &[Bit]) -> Result<(), SafetyViolation> {
        check_agreement(&self.decisions)?;
        check_validity(inputs, &self.decisions)?;
        if self.outcome == RunOutcome::AllDecided && !self.halted.iter().any(|&h| h) {
            check_decision_spread(&self.decision_rounds)?;
        }
        Ok(())
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run(n={}, {}, decided={}, first_round={:?}, total_ops={})",
            self.n,
            self.outcome,
            self.decided_count(),
            self.first_decision_round,
            self.total_ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            n: 3,
            outcome: RunOutcome::AllDecided,
            decisions: vec![Some(Bit::One), Some(Bit::One), Some(Bit::One)],
            decision_rounds: vec![Some(3), Some(4), Some(3)],
            ops: vec![12, 16, 12],
            halted: vec![false, false, false],
            first_decision_round: Some(3),
            first_decision_time: Some(10.0),
            total_ops: 40,
            sim_time: 12.5,
            max_round: 4,
        }
    }

    #[test]
    fn limits_builders() {
        let l = Limits::run_to_completion();
        assert!(!l.stop_at_first_decision);
        let l = Limits::first_decision().with_max_ops(10);
        assert!(l.stop_at_first_decision);
        assert_eq!(l.max_ops, 10);
        assert_eq!(Limits::default(), Limits::run_to_completion());
    }

    #[test]
    fn outcome_classification() {
        assert!(RunOutcome::AllDecided.decided());
        assert!(RunOutcome::FirstDecision.decided());
        assert!(!RunOutcome::OpCapReached.decided());
        assert!(!RunOutcome::AllHalted.decided());
        assert_eq!(RunOutcome::AllDecided.to_string(), "all processes decided");
    }

    #[test]
    fn report_accessors() {
        let r = report();
        assert_eq!(r.agreement_value(), Some(Bit::One));
        assert_eq!(r.decided_count(), 3);
        assert_eq!(r.max_ops_per_process(), 16);
        assert_eq!(r.last_decision_round(), Some(4));
        assert!(r.to_string().contains("n=3"));
    }

    #[test]
    fn safety_check_passes_clean_run() {
        let r = report();
        assert!(r.check_safety(&[Bit::One, Bit::Zero, Bit::One]).is_ok());
        assert!(r.check_safety(&[Bit::One, Bit::One, Bit::One]).is_ok());
    }

    #[test]
    fn safety_check_catches_disagreement() {
        let mut r = report();
        r.decisions[1] = Some(Bit::Zero);
        assert!(r.check_safety(&[Bit::One, Bit::Zero, Bit::One]).is_err());
    }

    #[test]
    fn safety_check_catches_validity() {
        let r = report();
        assert!(r.check_safety(&[Bit::Zero, Bit::Zero, Bit::Zero]).is_err());
    }

    #[test]
    fn spread_check_only_on_complete_runs() {
        let mut r = report();
        r.decision_rounds = vec![Some(2), Some(9), Some(2)];
        assert!(r.check_safety(&[Bit::One, Bit::Zero, Bit::One]).is_err());
        // Cut-off run: spread not checked.
        r.outcome = RunOutcome::FirstDecision;
        assert!(r.check_safety(&[Bit::One, Bit::Zero, Bit::One]).is_ok());
        // Run with halts: spread not checked either (a crashed process
        // may have decided early and stopped participating).
        r.outcome = RunOutcome::AllDecided;
        r.halted = vec![false, true, false];
        assert!(r.check_safety(&[Bit::One, Bit::Zero, Bit::One]).is_ok());
    }
}
