//! The untimed, fully adversarial driver.
//!
//! The paper's safety properties (§5) are proved against an unrestricted
//! scheduler; this driver hands every scheduling decision to an
//! [`nc_sched::Adversary`] — including proptest-generated scripts — and
//! lets an [`nc_sched::CrashAdversary`] kill processes adaptively.
//! It is the workhorse behind the property-based safety suite.

use nc_core::{Protocol, Status};
use nc_memory::MemStore;
use nc_sched::adversary::{Adversary, CrashAdversary, ProcView};

use crate::report::{Limits, RunOutcome, RunReport};
use crate::setup::Instance;

/// The adversarial driver beneath [`crate::sim::Sim::adversary`]: runs
/// an instance under a schedule chosen step-by-step by `adversary`,
/// with an adaptive crash adversary consulted after every executed
/// operation (pass [`nc_sched::adversary::NoCrashes`] for none).
///
/// The adversary is consulted before every operation with the current
/// view (enabled flags, rounds, step counts) and must name an enabled
/// process; returning `None` ends the run with
/// [`RunOutcome::ScheduleExhausted`].
///
/// Prefer [`crate::sim::Sim`] — this internal is exported so the
/// equivalence suites can pin the builder against it directly.
///
/// # Panics
///
/// Panics if the adversary names a disabled process (an adversary
/// implementation bug).
pub fn drive_adversarial<M: MemStore, P: Protocol<M>>(
    inst: &mut Instance<P, M>,
    adversary: &mut dyn Adversary,
    crash: &mut dyn CrashAdversary,
    limits: Limits,
) -> RunReport {
    let n = inst.procs.len();
    let mut halted = vec![false; n];
    let mut decided = vec![false; n];
    let mut decision_rounds: Vec<Option<usize>> = vec![None; n];
    let mut op_counts = vec![0u64; n];
    let mut total_ops = 0u64;
    let mut first_decision_round = None;
    let mut outcome: Option<RunOutcome> = None;

    loop {
        if (0..n).all(|i| decided[i] || halted[i]) {
            break;
        }
        if total_ops >= limits.max_ops {
            outcome = Some(RunOutcome::OpCapReached);
            break;
        }

        let enabled: Vec<bool> = (0..n).map(|i| !decided[i] && !halted[i]).collect();
        let rounds: Vec<usize> = inst.procs.iter().map(|p| p.round()).collect();
        let view = ProcView {
            enabled: &enabled,
            round: &rounds,
            steps: &op_counts,
        };
        let Some(pid) = adversary.next(view) else {
            outcome = Some(RunOutcome::ScheduleExhausted);
            break;
        };
        assert!(
            enabled.get(pid).copied().unwrap_or(false),
            "adversary chose disabled process {pid}"
        );

        let Status::Pending(op) = inst.procs[pid].status() else {
            unreachable!("enabled process must be pending")
        };
        let observed = inst.mem.exec(op);
        inst.procs[pid].advance(observed);
        total_ops += 1;
        op_counts[pid] += 1;

        if let Status::Decided(_) = inst.procs[pid].status() {
            decided[pid] = true;
            let round = inst.procs[pid].round();
            decision_rounds[pid] = Some(round);
            if first_decision_round.is_none() {
                first_decision_round = Some(round);
                if limits.stop_at_first_decision {
                    outcome = Some(RunOutcome::FirstDecision);
                    break;
                }
            }
        }

        // Adaptive crashes.
        let enabled: Vec<bool> = (0..n).map(|i| !decided[i] && !halted[i]).collect();
        let rounds: Vec<usize> = inst.procs.iter().map(|p| p.round()).collect();
        for v in crash.crash_now(ProcView {
            enabled: &enabled,
            round: &rounds,
            steps: &op_counts,
        }) {
            if v < n && !decided[v] {
                halted[v] = true;
            }
        }
    }

    let outcome = outcome.unwrap_or_else(|| {
        if decided.iter().any(|&d| d) {
            RunOutcome::AllDecided
        } else {
            RunOutcome::AllHalted
        }
    });

    RunReport {
        n,
        outcome,
        decisions: inst.procs.iter().map(|p| p.status().decision()).collect(),
        decision_rounds,
        ops: op_counts,
        halted,
        first_decision_round,
        first_decision_time: None,
        total_ops,
        sim_time: 0.0,
        max_round: inst.procs.iter().map(|p| p.round()).max().unwrap_or(0),
    }
}

#[cfg(test)]
// These unit tests pin the drive_adversarial internal directly (the
// builder side is pinned by tests/sim_equivalence.rs).
mod tests {
    use super::*;
    use crate::setup::{self, Algorithm};
    use nc_memory::Bit;
    use nc_sched::adversary::{
        AntiLeader, LeaderKiller, NoCrashes, RandomInterleave, RoundRobin, Script, Solo,
    };
    use nc_sched::stream_rng;

    /// [`drive_adversarial`] without crashes — the shape most tests
    /// here want.
    fn run_adversarial(
        inst: &mut Instance,
        adversary: &mut dyn Adversary,
        limits: Limits,
    ) -> RunReport {
        drive_adversarial(inst, adversary, &mut NoCrashes, limits)
    }

    #[test]
    fn round_robin_unanimous_decides_in_8_ops_each() {
        for input in Bit::BOTH {
            let inputs = setup::unanimous(5, input);
            let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
            let report = run_adversarial(
                &mut inst,
                &mut RoundRobin::new(),
                Limits::run_to_completion(),
            );
            assert_eq!(report.outcome, RunOutcome::AllDecided);
            assert!(report.ops.iter().all(|&o| o == 8), "{:?}", report.ops);
            report.check_safety(&inputs).unwrap();
        }
    }

    #[test]
    fn round_robin_split_never_terminates() {
        let inputs = setup::alternating(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
        let report = run_adversarial(
            &mut inst,
            &mut RoundRobin::new(),
            Limits::run_to_completion().with_max_ops(100_000),
        );
        assert_eq!(report.outcome, RunOutcome::OpCapReached);
        assert_eq!(report.decided_count(), 0);
        report.check_safety(&inputs).unwrap(); // safety even without termination
    }

    #[test]
    fn anti_leader_also_stalls_lean() {
        let inputs = setup::alternating(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
        let report = run_adversarial(
            &mut inst,
            &mut AntiLeader,
            Limits::run_to_completion().with_max_ops(100_000),
        );
        assert_eq!(report.outcome, RunOutcome::OpCapReached);
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn random_interleave_terminates_lean() {
        for seed in 0..5 {
            let inputs = setup::half_and_half(6);
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let mut adv = RandomInterleave::new(stream_rng(seed, 0, 4));
            let report = run_adversarial(&mut inst, &mut adv, Limits::run_to_completion());
            assert_eq!(report.outcome, RunOutcome::AllDecided, "seed {seed}");
            report.check_safety(&inputs).unwrap();
        }
    }

    #[test]
    fn solo_adversary_shows_wait_freedom() {
        // Favourite process runs alone and must decide in 8 ops no matter
        // that others exist but never run.
        let inputs = setup::half_and_half(4);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
        let mut adv = Solo::new(2);
        let report = run_adversarial(&mut inst, &mut adv, Limits::run_to_completion());
        assert_eq!(report.decisions[2], Some(inputs[2]));
        assert_eq!(report.ops[2], 8);
        assert_eq!(report.outcome, RunOutcome::AllDecided);
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn scripted_schedule_exhausts() {
        let inputs = setup::half_and_half(2);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
        let mut adv = Script::new(vec![0, 1, 0]);
        let report = run_adversarial(&mut inst, &mut adv, Limits::run_to_completion());
        assert_eq!(report.outcome, RunOutcome::ScheduleExhausted);
        assert_eq!(report.total_ops, 3);
        report.check_safety(&inputs).unwrap();
    }

    #[test]
    fn crash_all_processes_reports_all_halted() {
        let inputs = setup::alternating(3);
        let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
        let mut crash = nc_sched::adversary::CrashScript::new(vec![(0, 1), (1, 1), (2, 1)]);
        let report = drive_adversarial(
            &mut inst,
            &mut RoundRobin::new(),
            &mut crash,
            Limits::run_to_completion(),
        );
        assert_eq!(report.outcome, RunOutcome::AllHalted);
        assert_eq!(report.decided_count(), 0);
        assert!(report.halted.iter().all(|&h| h));
    }

    #[test]
    fn leader_killer_lets_lean_recover() {
        // Killing f leaders costs O(f log n) extra rounds but must not
        // prevent (probabilistic) termination under a random schedule.
        for seed in 0..5 {
            let inputs = setup::half_and_half(6);
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let mut adv = RandomInterleave::new(stream_rng(seed, 1, 4));
            let mut killer = LeaderKiller::new(2, 2);
            let report = drive_adversarial(
                &mut inst,
                &mut adv,
                &mut killer,
                Limits::run_to_completion(),
            );
            assert_eq!(report.outcome, RunOutcome::AllDecided, "seed {seed}");
            report.check_safety(&inputs).unwrap();
        }
    }

    #[test]
    fn all_algorithms_safe_under_random_adversary() {
        for alg in [
            Algorithm::Lean,
            Algorithm::Skipping,
            Algorithm::Randomized,
            Algorithm::Bounded { r_max: 6 },
            Algorithm::Backup,
        ] {
            let inputs = setup::half_and_half(4);
            let mut inst = setup::build(alg, &inputs, 21);
            let mut adv = RandomInterleave::new(stream_rng(21, 2, 4));
            let report = run_adversarial(&mut inst, &mut adv, Limits::run_to_completion());
            assert_eq!(report.outcome, RunOutcome::AllDecided, "{alg:?}");
            report.check_safety(&inputs).unwrap();
        }
    }
}
