//! Register layout of the backup protocol.
//!
//! Per round slot the protocol needs:
//!
//! * adopt-commit: `present[2]` and `committed[2]` flags — 4 registers;
//! * conciliator: `seen[2]` flags — 2 registers;
//! * shared coin: one `±1`-vote counter per process — `n` registers.
//!
//! Rounds are mapped onto a fixed pool of `rounds` slots cyclically
//! (`slot = (round - 1) % rounds`), which is what makes the whole
//! protocol's footprint a constant `rounds × (6 + n)` registers.

use nc_memory::{Addr, Bit, Region, Word};

/// Registers per round slot, excluding the per-process coin counters.
const FIXED_PER_ROUND: usize = 6;

/// Address layout for a [`crate::BackupConsensus`] instance group.
///
/// All processes of one execution must share one `BackupLayout`; the
/// region it wraps must not overlap any other protocol's region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BackupLayout {
    base: Addr,
    n: usize,
    rounds: usize,
}

impl BackupLayout {
    /// Creates a layout for `n` processes and a pool of `rounds` round
    /// slots inside `region`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `rounds == 0`, or the region is smaller than
    /// [`BackupLayout::words_needed`]`(n, rounds)`.
    pub fn new(region: Region, n: usize, rounds: usize) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(rounds > 0, "need at least one round slot");
        let needed = Self::words_needed(n, rounds);
        assert!(
            region.len() >= needed,
            "region has {} words, backup layout needs {needed}",
            region.len()
        );
        BackupLayout {
            base: region.base(),
            n,
            rounds,
        }
    }

    /// Registers required for `n` processes and `rounds` round slots.
    pub const fn words_needed(n: usize, rounds: usize) -> usize {
        rounds * (FIXED_PER_ROUND + n)
    }

    /// Number of processes this layout serves.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Size of the round-slot pool.
    pub const fn rounds(&self) -> usize {
        self.rounds
    }

    /// The random-walk exit threshold used by this instance's coins:
    /// `3n` (see [`crate::coin`]).
    pub const fn coin_threshold(&self) -> i64 {
        3 * self.n as i64
    }

    fn slot_base(&self, round: usize) -> Addr {
        debug_assert!(round >= 1, "protocol rounds are 1-based");
        let slot = (round - 1) % self.rounds;
        self.base.plus(slot * (FIXED_PER_ROUND + self.n))
    }

    /// Adopt-commit `present[v]` flag for `round`.
    pub fn present(&self, round: usize, v: Bit) -> Addr {
        self.slot_base(round).plus(v.index())
    }

    /// Adopt-commit `committed[v]` flag for `round`.
    pub fn committed(&self, round: usize, v: Bit) -> Addr {
        self.slot_base(round).plus(2 + v.index())
    }

    /// Conciliator `seen[v]` flag for `round`.
    pub fn seen(&self, round: usize, v: Bit) -> Addr {
        self.slot_base(round).plus(4 + v.index())
    }

    /// Coin counter of process `pid` for `round`.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= n`.
    pub fn counter(&self, round: usize, pid: usize) -> Addr {
        assert!(pid < self.n, "pid {pid} out of range (n = {})", self.n);
        self.slot_base(round).plus(FIXED_PER_ROUND + pid)
    }
}

/// Encodes a signed coin-counter value into a register word
/// (two's-complement round trip).
pub fn encode_counter(value: i64) -> Word {
    value as Word
}

/// Decodes a register word back into a signed coin-counter value.
pub fn decode_counter(word: Word) -> i64 {
    word as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_memory::SimMemory;
    use std::collections::HashSet;

    fn layout(n: usize, rounds: usize) -> BackupLayout {
        let mut mem = SimMemory::new();
        let region = mem.alloc(BackupLayout::words_needed(n, rounds));
        BackupLayout::new(region, n, rounds)
    }

    #[test]
    fn words_needed_counts_all_registers() {
        assert_eq!(BackupLayout::words_needed(1, 1), 7);
        assert_eq!(BackupLayout::words_needed(4, 8), 8 * 10);
    }

    #[test]
    fn addresses_within_one_round_are_distinct() {
        let l = layout(5, 4);
        let mut seen = HashSet::new();
        for r in 1..=4 {
            for v in Bit::BOTH {
                assert!(seen.insert(l.present(r, v)));
                assert!(seen.insert(l.committed(r, v)));
                assert!(seen.insert(l.seen(r, v)));
            }
            for pid in 0..5 {
                assert!(seen.insert(l.counter(r, pid)));
            }
        }
        assert_eq!(seen.len(), 4 * (6 + 5));
    }

    #[test]
    fn rounds_wrap_cyclically() {
        let l = layout(2, 3);
        assert_eq!(l.present(1, Bit::Zero), l.present(4, Bit::Zero));
        assert_eq!(l.counter(2, 1), l.counter(5, 1));
        assert_ne!(l.present(1, Bit::Zero), l.present(2, Bit::Zero));
    }

    #[test]
    fn accessors() {
        let l = layout(3, 2);
        assert_eq!(l.n(), 3);
        assert_eq!(l.rounds(), 2);
        assert_eq!(l.coin_threshold(), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn counter_pid_out_of_range_panics() {
        layout(2, 1).counter(1, 2);
    }

    #[test]
    #[should_panic(expected = "backup layout needs")]
    fn undersized_region_panics() {
        let mut mem = SimMemory::new();
        let region = mem.alloc(5);
        BackupLayout::new(region, 2, 2);
    }

    #[test]
    fn counter_encoding_roundtrips() {
        for v in [-1_000_000i64, -1, 0, 1, 42, i64::MAX, i64::MIN] {
            assert_eq!(decode_counter(encode_counter(v)), v);
        }
    }

    #[test]
    fn layout_addresses_stay_inside_region() {
        let n = 7;
        let rounds = 5;
        let mut mem = SimMemory::new();
        let _pad = mem.alloc(100); // non-zero base
        let region = mem.alloc(BackupLayout::words_needed(n, rounds));
        let l = BackupLayout::new(region, n, rounds);
        for r in 1..=20 {
            for v in Bit::BOTH {
                assert!(region.contains(l.present(r, v)));
                assert!(region.contains(l.committed(r, v)));
                assert!(region.contains(l.seen(r, v)));
            }
            for pid in 0..n {
                assert!(region.contains(l.counter(r, pid)));
            }
        }
    }
}
