//! The random-walk shared coin (Aspnes '93 flavour).
//!
//! Each process repeatedly: scans all `n` per-process vote counters; if
//! the observed sum has crossed `+T` it outputs 1, below `-T` it outputs
//! 0; otherwise it flips a local ±1 coin, adds the flip to its own
//! counter, and rescans. `T = 3n`.
//!
//! Properties (with adversarial scheduling):
//!
//! * **Termination w.p. 1** — the sum performs an unbiased random walk
//!   driven by whichever processes are still voting; any absorbing
//!   barrier at finite distance is hit almost surely.
//! * **Polynomial work** — the walk needs `O(T²) = O(n²)` net flips in
//!   expectation; each flip costs a scan (`n` reads) plus one write,
//!   giving `O(n³)` expected total operations. This matches the
//!   polynomial-work contract the §8 construction demands (the paper's
//!   cited backup is `O(n⁴)`).
//! * **Constant agreement probability** — once the sum reaches `±3n`, a
//!   process scanning later can only observe a different *sign* after the
//!   walk travels `Ω(n)` further; standard martingale bounds give a
//!   constant probability `δ` that every process sees the same sign.
//!   The experiments measure `δ` empirically (EXPERIMENTS.md) rather
//!   than re-deriving the constant.
//!
//! The counters are fixed in number (`n` per round slot) and 64-bit wide;
//! see the crate docs for the bounded-space caveat versus Aspnes '93.

use rand::rngs::SmallRng;
use rand::RngExt;

use nc_memory::{Bit, Op, Word};

use crate::adopt::SubStatus;
use crate::layout::{decode_counter, encode_counter, BackupLayout};

#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    /// Scanning counters; `next` is the index about to be read, `sum`
    /// the partial sum of counters `0..next`.
    Scan {
        next: usize,
        sum: i64,
    },
    /// Writing the new value of our own counter.
    WriteVote {
        new_value: i64,
    },
    Done(Bit),
}

/// One process's participation in one round's shared coin.
#[derive(Clone, Debug)]
pub struct SharedCoin {
    layout: BackupLayout,
    round: usize,
    pid: usize,
    /// Local cache of our own counter (we are its only writer).
    my_votes: i64,
    flips: u64,
    phase: Phase,
    rng: SmallRng,
}

impl SharedCoin {
    /// Starts coin participation for process `pid` in `round`.
    ///
    /// `my_votes` must be this process's current counter value for the
    /// round (0 unless resuming, which the protocol never does — each
    /// process joins each round's coin at most once).
    pub fn new(layout: BackupLayout, round: usize, pid: usize, rng: SmallRng) -> Self {
        SharedCoin {
            layout,
            round,
            pid,
            my_votes: 0,
            flips: 0,
            phase: Phase::Scan { next: 0, sum: 0 },
            rng,
        }
    }

    /// Number of local coin flips (votes) this process has cast.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// The machine's pending operation or outcome.
    pub fn status(&self) -> SubStatus<Bit> {
        match &self.phase {
            Phase::Scan { next, .. } => {
                SubStatus::Pending(Op::Read(self.layout.counter(self.round, *next)))
            }
            Phase::WriteVote { new_value } => SubStatus::Pending(Op::Write(
                self.layout.counter(self.round, self.pid),
                encode_counter(*new_value),
            )),
            Phase::Done(b) => SubStatus::Done(*b),
        }
    }

    /// Delivers the pending operation's result.
    ///
    /// # Panics
    ///
    /// Panics if the machine is done or the result shape mismatches.
    pub fn advance(&mut self, read_value: Option<Word>) {
        let n = self.layout.n();
        let threshold = self.layout.coin_threshold();
        match self.phase.clone() {
            Phase::Scan { next, sum } => {
                let v = decode_counter(read_value.expect("scan read needs a value"));
                let sum = sum + v;
                if next + 1 < n {
                    self.phase = Phase::Scan {
                        next: next + 1,
                        sum,
                    };
                } else if sum >= threshold {
                    self.phase = Phase::Done(Bit::One);
                } else if sum <= -threshold {
                    self.phase = Phase::Done(Bit::Zero);
                } else {
                    let flip: i64 = if self.rng.random::<bool>() { 1 } else { -1 };
                    self.flips += 1;
                    self.phase = Phase::WriteVote {
                        new_value: self.my_votes + flip,
                    };
                }
            }
            Phase::WriteVote { new_value } => {
                assert!(read_value.is_none(), "vote write takes no result");
                self.my_votes = new_value;
                self.phase = Phase::Scan { next: 0, sum: 0 };
            }
            Phase::Done(_) => panic!("advance called on a finished coin"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_memory::SimMemory;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn setup(n: usize) -> (SimMemory, BackupLayout) {
        let mut mem = SimMemory::new();
        let region = mem.alloc(BackupLayout::words_needed(n, 2));
        (mem, BackupLayout::new(region, n, 2))
    }

    fn drive(coin: &mut SharedCoin, mem: &mut SimMemory, cap: u64) -> Bit {
        for _ in 0..cap {
            match coin.status() {
                SubStatus::Done(b) => return b,
                SubStatus::Pending(op) => coin.advance(mem.exec(op)),
            }
        }
        panic!("coin did not terminate within {cap} ops");
    }

    #[test]
    fn solo_coin_terminates_with_valid_output() {
        for seed in 0..10 {
            let (mut mem, layout) = setup(1);
            let mut c = SharedCoin::new(layout, 1, 0, rng(seed));
            let out = drive(&mut c, &mut mem, 1_000_000);
            assert!(out == Bit::Zero || out == Bit::One);
            assert!(c.flips() >= layout.coin_threshold() as u64);
        }
    }

    #[test]
    fn prefilled_counters_force_the_outcome() {
        let (mut mem, layout) = setup(3);
        // Pre-load the counters past +T: first scan must output One with
        // zero flips.
        for pid in 0..3 {
            mem.write(layout.counter(1, pid), encode_counter(3));
        }
        let mut c = SharedCoin::new(layout, 1, 0, rng(0));
        assert_eq!(drive(&mut c, &mut mem, 100), Bit::One);
        assert_eq!(c.flips(), 0);

        for pid in 0..3 {
            mem.write(layout.counter(2, pid), encode_counter(-3));
        }
        let mut c = SharedCoin::new(layout, 2, 0, rng(0));
        assert_eq!(drive(&mut c, &mut mem, 100), Bit::Zero);
    }

    #[test]
    fn both_outcomes_occur_across_seeds() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..40 {
            let (mut mem, layout) = setup(1);
            let mut c = SharedCoin::new(layout, 1, 0, rng(seed));
            seen.insert(drive(&mut c, &mut mem, 1_000_000));
        }
        assert_eq!(seen.len(), 2, "coin is stuck on one outcome");
    }

    #[test]
    fn concurrent_coiners_agree_with_high_probability() {
        // Random interleaving of 4 coiners; measure the all-agree rate.
        // The theory promises a constant delta; empirically (random
        // schedule) it is near 1. Use a generous assertion to stay
        // deterministic across PRNG detail changes.
        use rand::RngExt as _;
        let n = 4;
        let trials = 50;
        let mut agreements = 0;
        for seed in 0..trials {
            let (mut mem, layout) = setup(n);
            let mut coins: Vec<SharedCoin> = (0..n)
                .map(|pid| SharedCoin::new(layout, 1, pid, rng(seed * 100 + pid as u64)))
                .collect();
            let mut sched = rng(seed + 5000);
            let mut outs: Vec<Option<Bit>> = vec![None; n];
            for _ in 0..5_000_000u64 {
                let live: Vec<usize> = (0..n).filter(|&i| outs[i].is_none()).collect();
                if live.is_empty() {
                    break;
                }
                let pick = live[sched.random_range(0..live.len())];
                match coins[pick].status() {
                    SubStatus::Done(b) => outs[pick] = Some(b),
                    SubStatus::Pending(op) => {
                        let res = mem.exec(op);
                        coins[pick].advance(res);
                    }
                }
            }
            let outs: Vec<Bit> = outs.into_iter().map(|o| o.unwrap()).collect();
            if outs.iter().all(|&b| b == outs[0]) {
                agreements += 1;
            }
        }
        assert!(
            agreements * 2 > trials,
            "agreement rate too low: {agreements}/{trials}"
        );
    }

    #[test]
    fn work_scales_polynomially() {
        // A solo coiner needs ~T² flips, each costing n+1 ops. Check the
        // op count stays within a generous polynomial envelope.
        let (mut mem, layout) = setup(2);
        let mut c = SharedCoin::new(layout, 1, 0, rng(42));
        let before = mem.ops_executed();
        drive(&mut c, &mut mem, 10_000_000);
        let ops = mem.ops_executed() - before;
        let t = layout.coin_threshold() as u64; // 6
        assert!(ops < 1000 * t * t * 3, "coin used {ops} ops");
    }

    #[test]
    #[should_panic(expected = "finished coin")]
    fn advance_after_done_panics() {
        let (mut mem, layout) = setup(1);
        let mut c = SharedCoin::new(layout, 1, 0, rng(1));
        drive(&mut c, &mut mem, 1_000_000);
        c.advance(None);
    }
}
