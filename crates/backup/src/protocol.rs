//! The backup consensus round loop.
//!
//! ```text
//! p := input; r := 1
//! loop:
//!   outcome := AdoptCommit_r.propose(p)
//!   if outcome is (commit, v): decide v
//!   p := Conciliator_r(outcome.value)
//!   r := r + 1
//! ```
//!
//! Correctness, assembled from the component properties:
//!
//! * **Agreement.** If any process commits `v` at round `r`, adopt-commit
//!   coherence forces every process's round-`r` outcome value to `v`, so
//!   every conciliator-`r` input is `v`, unanimity preservation makes
//!   every round-`r + 1` proposal `v`, and convergence commits `v` for
//!   everyone at `r + 1`. Decisions at other rounds collapse to the same
//!   value by induction on the earliest commit round.
//! * **Validity.** Unanimous inputs commit at round 1 (convergence), and
//!   no coin is ever consulted.
//! * **Termination.** Each no-commit round ends with a conciliator whose
//!   outputs are unanimous with probability ≥ δ (a constant), so the
//!   round count is geometric; each round costs `O(1)` adopt-commit ops
//!   plus expected `O(n³)` coin ops — polynomial work, as §8 requires.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use nc_core::{Protocol, ProtocolCore, Status};
use nc_memory::{Bit, MemStore, Word};

use crate::adopt::{AcOutcome, AdoptCommit, SubStatus};
use crate::conciliator::Conciliator;
use crate::layout::BackupLayout;

#[derive(Clone, Debug)]
enum Phase {
    Adopt(AdoptCommit),
    Conciliate(Conciliator),
    Done(Bit),
}

/// A bounded-space randomized consensus protocol instance (one process).
///
/// Implements [`nc_core::Protocol`], so it runs under every driver in
/// the workspace and plugs directly into
/// [`nc_core::BoundedLean`] as the §8 backup.
#[derive(Clone, Debug)]
pub struct BackupConsensus {
    layout: BackupLayout,
    pid: usize,
    input: Bit,
    preference: Bit,
    round: usize,
    ops: u64,
    coin_rounds: u64,
    rng: SmallRng,
    phase: Phase,
}

impl BackupConsensus {
    /// Creates the state machine for process `pid` (`< layout.n()`) with
    /// the given input and RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= layout.n()`.
    pub fn new(layout: BackupLayout, pid: usize, input: Bit, mut rng: SmallRng) -> Self {
        assert!(
            pid < layout.n(),
            "pid {pid} out of range for n={}",
            layout.n()
        );
        let _ = rng.random::<u64>(); // decorrelate from sibling streams
        BackupConsensus {
            layout,
            pid,
            input,
            preference: input,
            round: 1,
            ops: 0,
            coin_rounds: 0,
            rng: rng.clone(),
            phase: Phase::Adopt(AdoptCommit::new(layout, 1, input)),
        }
    }

    /// The input this process proposed.
    pub fn input(&self) -> Bit {
        self.input
    }

    /// How many of this process's rounds fell through to the shared coin.
    pub fn coin_rounds(&self) -> u64 {
        self.coin_rounds
    }

    fn fork_rng(&mut self) -> SmallRng {
        SmallRng::seed_from_u64(self.rng.random::<u64>())
    }
}

impl<M: MemStore> Protocol<M> for BackupConsensus {}

impl ProtocolCore for BackupConsensus {
    fn status(&self) -> Status {
        match &self.phase {
            Phase::Adopt(ac) => match ac.status() {
                SubStatus::Pending(op) => Status::Pending(op),
                SubStatus::Done(_) => unreachable!("adopt outcome is consumed in advance()"),
            },
            Phase::Conciliate(c) => match c.status() {
                SubStatus::Pending(op) => Status::Pending(op),
                SubStatus::Done(_) => unreachable!("conciliator outcome is consumed in advance()"),
            },
            Phase::Done(b) => Status::Decided(*b),
        }
    }

    fn advance(&mut self, read_value: Option<Word>) {
        self.ops += 1;
        match &mut self.phase {
            Phase::Adopt(ac) => {
                ac.advance(read_value);
                if let SubStatus::Done(outcome) = ac.status() {
                    self.preference = outcome.value();
                    match outcome {
                        AcOutcome::Commit(v) => self.phase = Phase::Done(v),
                        AcOutcome::Adopt(v) => {
                            let rng = self.fork_rng();
                            self.phase = Phase::Conciliate(Conciliator::new(
                                self.layout,
                                self.round,
                                self.pid,
                                v,
                                rng,
                            ));
                        }
                    }
                }
            }
            Phase::Conciliate(c) => {
                c.advance(read_value);
                if let SubStatus::Done(v) = c.status() {
                    if c.used_coin() {
                        self.coin_rounds += 1;
                    }
                    self.preference = v;
                    self.round += 1;
                    self.phase = Phase::Adopt(AdoptCommit::new(self.layout, self.round, v));
                }
            }
            Phase::Done(_) => panic!("advance called on a decided process"),
        }
    }

    fn round(&self) -> usize {
        self.round
    }

    fn preference(&self) -> Bit {
        self.preference
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl fmt::Display for BackupConsensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "backup(P{}, pref={}, round={}, {})",
            self.pid,
            self.preference,
            self.round,
            self.status()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::{run_random_interleave, run_round_robin, step};
    use nc_memory::SimMemory;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn setup(inputs: &[Bit], seed: u64) -> (SimMemory, Vec<BackupConsensus>) {
        let n = inputs.len();
        let mut mem = SimMemory::new();
        let region = mem.alloc(BackupLayout::words_needed(n, 16));
        let layout = BackupLayout::new(region, n, 16);
        let procs = inputs
            .iter()
            .enumerate()
            .map(|(i, &b)| BackupConsensus::new(layout, i, b, rng(seed * 1000 + i as u64)))
            .collect();
        (mem, procs)
    }

    #[test]
    fn solo_decides_own_input_quickly() {
        for input in Bit::BOTH {
            let (mut mem, mut procs) = setup(&[input], 1);
            let p = &mut procs[0];
            let mut d = None;
            let mut ops = 0;
            while d.is_none() {
                d = step(p, &mut mem);
                ops += 1;
                assert!(ops < 100);
            }
            assert_eq!(d, Some(input));
            assert_eq!(p.ops_completed(), 4, "solo commit path is 4 ops");
        }
    }

    #[test]
    fn validity_unanimous_inputs_never_coin() {
        for input in Bit::BOTH {
            for seed in 0..5 {
                let (mut mem, mut procs) = setup(&[input; 5], seed);
                let decisions =
                    run_random_interleave(&mut procs, &mut mem, seed, 10_000_000).unwrap();
                assert!(decisions.iter().all(|&d| d == input), "validity broken");
                assert!(procs.iter().all(|p| p.coin_rounds() == 0));
            }
        }
    }

    #[test]
    fn agreement_on_mixed_inputs_random_interleaving() {
        for seed in 0..15u64 {
            let inputs = [Bit::Zero, Bit::One, Bit::One, Bit::Zero];
            let (mut mem, mut procs) = setup(&inputs, seed);
            let decisions = run_random_interleave(&mut procs, &mut mem, seed, 50_000_000)
                .expect("backup must terminate");
            let v = decisions[0];
            assert!(
                decisions.iter().all(|&d| d == v),
                "disagreement (seed {seed})"
            );
        }
    }

    #[test]
    fn agreement_under_lockstep_round_robin() {
        // THE decisive property: deterministic lean-consensus cannot
        // terminate under lockstep; the backup (with its shared coin)
        // must. Note round-robin interleaving of coin scans is still a
        // valid schedule — termination is probabilistic over the coins.
        for seed in 0..10u64 {
            let inputs = [Bit::Zero, Bit::One];
            let (mut mem, mut procs) = setup(&inputs, seed);
            let decisions = run_round_robin(&mut procs, &mut mem, 50_000_000)
                .expect("backup must terminate under lockstep");
            assert_eq!(decisions[0], decisions[1], "disagreement (seed {seed})");
        }
    }

    #[test]
    fn late_starter_agrees_with_earlier_decision() {
        let (mut mem, mut procs) = setup(&[Bit::One, Bit::Zero], 3);
        // Process 0 runs to completion alone (commits One at round 1).
        let mut d0 = None;
        while d0.is_none() {
            d0 = step(&mut procs[0], &mut mem);
        }
        assert_eq!(d0, Some(Bit::One));
        // Process 1 (input Zero) starts afterwards: must adopt One.
        let mut d1 = None;
        let mut guard = 0;
        while d1.is_none() {
            d1 = step(&mut procs[1], &mut mem);
            guard += 1;
            assert!(guard < 1_000_000);
        }
        assert_eq!(d1, Some(Bit::One), "late starter must agree");
    }

    #[test]
    fn decision_round_spread_is_at_most_one() {
        // Commit coherence forces decisions within one round of the
        // earliest commit.
        for seed in 0..10u64 {
            let inputs = [Bit::Zero, Bit::One, Bit::Zero];
            let (mut mem, mut procs) = setup(&inputs, seed);
            run_random_interleave(&mut procs, &mut mem, seed, 50_000_000).unwrap();
            let rounds: Vec<usize> = procs.iter().map(|p| p.round()).collect();
            let lo = rounds.iter().min().unwrap();
            let hi = rounds.iter().max().unwrap();
            assert!(hi - lo <= 1, "decision rounds {rounds:?} (seed {seed})");
        }
    }

    #[test]
    fn accessors_and_display() {
        let (_, procs) = setup(&[Bit::One], 0);
        let p = &procs[0];
        assert_eq!(p.input(), Bit::One);
        assert_eq!(p.preference(), Bit::One);
        assert_eq!(p.round(), 1);
        assert_eq!(p.coin_rounds(), 0);
        assert!(p.to_string().contains("backup(P0"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pid_out_of_range_panics() {
        let mut mem = SimMemory::new();
        let region = mem.alloc(BackupLayout::words_needed(2, 4));
        let layout = BackupLayout::new(region, 2, 4);
        let _ = BackupConsensus::new(layout, 2, Bit::Zero, rng(0));
    }
}
