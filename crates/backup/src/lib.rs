//! Bounded-space randomized backup consensus for the §8 combined
//! protocol.
//!
//! The paper bounds lean-consensus's space by cutting it off after
//! `r_max = O(log² n)` rounds and switching to "a bounded-space consensus
//! protocol that requires polynomial work per process", citing the
//! `O(n⁴)` protocol of Aspnes '93. Any protocol with the following
//! contract slots into that construction:
//!
//! * **validity** (crucial for agreement across the seam),
//! * **agreement**,
//! * almost-sure termination with polynomial expected work,
//! * a fixed, bounded register footprint.
//!
//! [`BackupConsensus`] meets the contract with a three-layer design whose
//! correctness argument is short enough to carry in the module docs:
//!
//! 1. **Adopt-commit objects** ([`adopt`]) — one per round. If any
//!    process *commits* `v` in round `r`, every process that ever passes
//!    round `r` walks away holding `v`; unanimous proposals always
//!    commit.
//! 2. **Conciliators** ([`conciliator`]) — one per round. Preserve
//!    unanimous inputs exactly; on mixed inputs, at most one value can
//!    "win early", and everyone else falls through to a shared coin, so
//!    all outputs agree with constant probability.
//! 3. **Random-walk shared coin** ([`coin`]) — per-process ±1 counters,
//!    exit when the observed sum crosses `±3n` (the Aspnes '93 random
//!    walk with a practical threshold).
//!
//! The round loop is then: propose to adopt-commit; on commit, decide;
//! on adopt, run the conciliator and carry its output to the next round.
//! A commit at round `r` forces unanimity into round `r + 1`, where
//! everyone commits — so decisions can never disagree, and each
//! no-commit round ends in a conciliator that produces unanimity with
//! constant probability, giving geometric termination.
//!
//! # Space
//!
//! Rounds live in a fixed pool of [`BackupLayout::rounds`] slots reused
//! cyclically. Typical executions finish in 1–3 rounds; reuse only
//! matters if an execution outlives the pool with a straggler more than
//! a full pool-cycle behind, which requires a geometrically unlikely run
//! of coin failures (probability `≤ (1-δ)^rounds`). This is the
//! documented engineering stand-in for the truly bounded construction of
//! Aspnes '93, whose counter-folding machinery is out of scope here (see
//! DESIGN.md, "Substitutions").
//!
//! # Example
//!
//! ```
//! use nc_backup::{BackupConsensus, BackupLayout};
//! use nc_core::{run_random_interleave, Protocol};
//! use nc_memory::{Bit, SimMemory};
//! use nc_sched::stream_rng;
//!
//! let n = 3;
//! let mut mem = SimMemory::new();
//! let region = mem.alloc(BackupLayout::words_needed(n, 16));
//! let layout = BackupLayout::new(region, n, 16);
//!
//! let inputs = [Bit::Zero, Bit::One, Bit::One];
//! let mut procs: Vec<BackupConsensus> = inputs
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &b)| BackupConsensus::new(layout, i, b, stream_rng(7, i as u64, 5)))
//!     .collect();
//!
//! let decisions = run_random_interleave(&mut procs, &mut mem, 1, 1_000_000).unwrap();
//! assert!(decisions.iter().all(|&d| d == decisions[0]), "agreement");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod adopt;
pub mod coin;
pub mod conciliator;
pub mod layout;
pub mod protocol;

pub use adopt::{AcOutcome, AdoptCommit};
pub use coin::SharedCoin;
pub use conciliator::Conciliator;
pub use layout::BackupLayout;
pub use protocol::BackupConsensus;
