//! Conciliators: probabilistic agreement with unanimity preservation.
//!
//! A conciliator takes each process's current value and returns a value
//! such that
//!
//! 1. **unanimity preservation** — if every input is `v`, every output
//!    is `v` (this is what keeps a round-`r` commit binding in round
//!    `r + 1`);
//! 2. **probabilistic agreement** — with probability at least a constant
//!    `δ`, all outputs are equal;
//! 3. **validity-ish** — outputs are inputs or coin values (the round
//!    loop never decides directly on a conciliator output, so nothing
//!    stronger is needed).
//!
//! Construction (2 register ops + a shared coin fallback):
//!
//! ```text
//! conciliate(v):
//!   W: seen[v] := 1
//!   R: if seen[1-v] = 0: return v          # "early exit"
//!      else:             return coin()
//! ```
//!
//! At most one value can exit early: an early exit of `v` reads
//! `seen[1-v] = 0`, so every `seen[1-v]` write follows that read — and a
//! would-be early exit of `1-v` must write `seen[1-v]` before its own
//! read of `seen[v]`, which therefore happens after the `v`-writer's
//! write and observes 1. So mixed executions have all early exits on one
//! side and everyone else on the coin, which matches the early side with
//! probability ≥ δ/2.

use rand::rngs::SmallRng;

use nc_memory::{Bit, Op, Word};

use crate::adopt::SubStatus;
use crate::coin::SharedCoin;
use crate::layout::BackupLayout;

#[derive(Clone, Debug)]
enum Phase {
    WriteSeen,
    ReadRivalSeen,
    Coin(SharedCoin),
    Done(Bit),
}

/// One process's pass through one round's conciliator.
#[derive(Clone, Debug)]
pub struct Conciliator {
    layout: BackupLayout,
    round: usize,
    pid: usize,
    input: Bit,
    rng: Option<SmallRng>,
    coin_flips: u64,
    phase: Phase,
}

impl Conciliator {
    /// Starts a conciliation of `input` for process `pid` in `round`.
    ///
    /// The RNG seeds the shared-coin fallback (consumed only if the
    /// fallback is reached).
    pub fn new(layout: BackupLayout, round: usize, pid: usize, input: Bit, rng: SmallRng) -> Self {
        Conciliator {
            layout,
            round,
            pid,
            input,
            rng: Some(rng),
            coin_flips: 0,
            phase: Phase::WriteSeen,
        }
    }

    /// Whether this process fell through to the shared coin.
    pub fn used_coin(&self) -> bool {
        self.coin_flips > 0 || matches!(self.phase, Phase::Coin(_))
    }

    /// The machine's pending operation or outcome.
    pub fn status(&self) -> SubStatus<Bit> {
        match &self.phase {
            Phase::WriteSeen => {
                SubStatus::Pending(Op::Write(self.layout.seen(self.round, self.input), 1))
            }
            Phase::ReadRivalSeen => {
                SubStatus::Pending(Op::Read(self.layout.seen(self.round, self.input.rival())))
            }
            Phase::Coin(coin) => coin.status(),
            Phase::Done(b) => SubStatus::Done(*b),
        }
    }

    /// Delivers the pending operation's result.
    ///
    /// # Panics
    ///
    /// Panics if the machine is done or the result shape mismatches.
    pub fn advance(&mut self, read_value: Option<Word>) {
        match &mut self.phase {
            Phase::WriteSeen => {
                assert!(read_value.is_none(), "write takes no result");
                self.phase = Phase::ReadRivalSeen;
            }
            Phase::ReadRivalSeen => {
                let rival_seen = read_value.expect("read needs a value") != 0;
                if rival_seen {
                    let rng = self.rng.take().expect("coin rng consumed once");
                    self.phase =
                        Phase::Coin(SharedCoin::new(self.layout, self.round, self.pid, rng));
                } else {
                    self.phase = Phase::Done(self.input);
                }
            }
            Phase::Coin(coin) => {
                coin.advance(read_value);
                self.coin_flips = coin.flips();
                if let SubStatus::Done(b) = coin.status() {
                    self.phase = Phase::Done(b);
                }
            }
            Phase::Done(_) => panic!("advance called on a finished conciliator"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_memory::SimMemory;
    use rand::{RngExt, SeedableRng};

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn setup(n: usize) -> (SimMemory, BackupLayout) {
        let mut mem = SimMemory::new();
        let region = mem.alloc(BackupLayout::words_needed(n, 2));
        (mem, BackupLayout::new(region, n, 2))
    }

    fn drive(c: &mut Conciliator, mem: &mut SimMemory) -> Bit {
        for _ in 0..10_000_000u64 {
            match c.status() {
                SubStatus::Done(b) => return b,
                SubStatus::Pending(op) => c.advance(mem.exec(op)),
            }
        }
        panic!("conciliator did not terminate");
    }

    #[test]
    fn solo_keeps_its_input_in_two_ops() {
        for v in Bit::BOTH {
            let (mut mem, layout) = setup(1);
            let mut c = Conciliator::new(layout, 1, 0, v, rng(0));
            let before = mem.ops_executed();
            assert_eq!(drive(&mut c, &mut mem), v);
            assert_eq!(mem.ops_executed() - before, 2);
            assert!(!c.used_coin());
        }
    }

    #[test]
    fn unanimity_is_preserved_sequentially() {
        let (mut mem, layout) = setup(3);
        for pid in 0..3 {
            let mut c = Conciliator::new(layout, 1, pid, Bit::One, rng(pid as u64));
            assert_eq!(drive(&mut c, &mut mem), Bit::One);
        }
    }

    #[test]
    fn mixed_inputs_terminate_and_at_most_one_side_exits_early() {
        for seed in 0..30u64 {
            let (mut mem, layout) = setup(2);
            let mut procs = [
                Conciliator::new(layout, 1, 0, Bit::Zero, rng(seed)),
                Conciliator::new(layout, 1, 1, Bit::One, rng(seed + 1000)),
            ];
            let mut sched = rng(seed + 2000);
            let mut outs = [None, None];
            while outs.iter().any(|o| o.is_none()) {
                let live: Vec<usize> = (0..2).filter(|&i| outs[i].is_none()).collect();
                let pick = live[sched.random_range(0..live.len())];
                match procs[pick].status() {
                    SubStatus::Done(b) => outs[pick] = Some(b),
                    SubStatus::Pending(op) => {
                        let res = mem.exec(op);
                        procs[pick].advance(res);
                    }
                }
            }
            // At most one early exit side: if both skipped the coin they
            // must have the same output value.
            let early: Vec<Bit> = (0..2)
                .filter(|&i| !procs[i].used_coin())
                .map(|i| outs[i].unwrap())
                .collect();
            if early.len() == 2 {
                assert_eq!(early[0], early[1], "two rival early exits (seed {seed})");
            }
        }
    }

    #[test]
    fn agreement_rate_is_substantial_on_mixed_inputs() {
        let n = 4;
        let trials = 40;
        let mut agreements = 0;
        for seed in 0..trials {
            let (mut mem, layout) = setup(n);
            let mut procs: Vec<Conciliator> = (0..n)
                .map(|pid| {
                    Conciliator::new(
                        layout,
                        1,
                        pid,
                        Bit::from(pid % 2 == 0),
                        rng(seed * 50 + pid as u64),
                    )
                })
                .collect();
            let mut sched = rng(seed + 999);
            let mut outs: Vec<Option<Bit>> = vec![None; n];
            while outs.iter().any(|o| o.is_none()) {
                let live: Vec<usize> = (0..n).filter(|&i| outs[i].is_none()).collect();
                let pick = live[sched.random_range(0..live.len())];
                match procs[pick].status() {
                    SubStatus::Done(b) => outs[pick] = Some(b),
                    SubStatus::Pending(op) => {
                        let res = mem.exec(op);
                        procs[pick].advance(res);
                    }
                }
            }
            let outs: Vec<Bit> = outs.into_iter().map(|o| o.unwrap()).collect();
            if outs.iter().all(|&b| b == outs[0]) {
                agreements += 1;
            }
        }
        assert!(
            agreements * 4 > trials,
            "agreement rate too low: {agreements}/{trials}"
        );
    }

    #[test]
    fn late_rival_takes_the_coin() {
        let (mut mem, layout) = setup(2);
        let mut first = Conciliator::new(layout, 1, 0, Bit::Zero, rng(0));
        assert_eq!(drive(&mut first, &mut mem), Bit::Zero);
        let mut late = Conciliator::new(layout, 1, 1, Bit::One, rng(1));
        let _ = drive(&mut late, &mut mem);
        assert!(late.used_coin(), "late rival must fall through to the coin");
    }

    #[test]
    #[should_panic(expected = "finished conciliator")]
    fn advance_after_done_panics() {
        let (mut mem, layout) = setup(1);
        let mut c = Conciliator::new(layout, 1, 0, Bit::Zero, rng(0));
        drive(&mut c, &mut mem);
        c.advance(None);
    }
}
