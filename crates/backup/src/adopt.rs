//! Adopt-commit objects from atomic registers.
//!
//! An adopt-commit object is a one-shot agreement primitive weaker than
//! consensus (and therefore implementable deterministically): each
//! process proposes a value and receives `(commit, v)` or `(adopt, v)`
//! such that
//!
//! 1. **coherence** — if any process returns `(commit, v)`, *every*
//!    process returns `v` (committed or adopted), regardless of when it
//!    proposes;
//! 2. **convergence** — if all proposals are `v`, everyone returns
//!    `(commit, v)`;
//! 3. **validity** — every returned value was proposed.
//!
//! The register construction (four flags per object) and its four-line
//! proof:
//!
//! ```text
//! propose(v):
//!   W: present[v] := 1
//!   R: if present[1-v] = 0:
//!        W: committed[v] := 1
//!        R: if present[1-v] = 0: return (commit, v)
//!           else:                return (adopt, v)
//!      else:
//!        R: if committed[1-v] = 1: return (adopt, 1-v)
//!           else:                  return (adopt, v)
//! ```
//!
//! *Coherence*: suppose `P` commits `v`; both its reads of
//! `present[1-v]` returned 0, so every write of `present[1-v]` follows
//! `P`'s second read — hence follows `P`'s writes of `present[v]` and
//! `committed[v]`. A rival proposer `Q` (input `1-v`) therefore reads
//! `present[v] = 1` (no commit path for `1-v`) and `committed[v] = 1`,
//! returning `(adopt, v)`. Two commits of different values are
//! impossible by the same ordering argument applied both ways.
//! *Convergence* and *validity* are immediate.

use std::fmt;

use nc_memory::{Bit, Op, Word};

use crate::layout::BackupLayout;

/// The outcome of an adopt-commit proposal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcOutcome {
    /// The object *committed* `v`: the caller may decide `v` (everyone
    /// else is guaranteed to hold `v` after passing this object).
    Commit(Bit),
    /// The caller must carry `v` forward but may not decide yet.
    Adopt(Bit),
}

impl AcOutcome {
    /// The carried value, committed or adopted.
    pub fn value(self) -> Bit {
        match self {
            AcOutcome::Commit(v) | AcOutcome::Adopt(v) => v,
        }
    }

    /// Whether this outcome is a commit.
    pub fn is_commit(self) -> bool {
        matches!(self, AcOutcome::Commit(_))
    }
}

impl fmt::Display for AcOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcOutcome::Commit(v) => write!(f, "commit {v}"),
            AcOutcome::Adopt(v) => write!(f, "adopt {v}"),
        }
    }
}

/// What an embedded sub-machine wants next: an operation, or its result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubStatus<T> {
    /// The sub-machine wants this operation executed.
    Pending(Op),
    /// The sub-machine has finished with this outcome.
    Done(T),
}

impl<T: Copy> SubStatus<T> {
    /// The outcome, if finished.
    pub fn outcome(self) -> Option<T> {
        match self {
            SubStatus::Done(t) => Some(t),
            SubStatus::Pending(_) => None,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    WritePresent,
    ReadRivalPresent,
    WriteCommitted,
    RecheckRivalPresent,
    ReadRivalCommitted,
    Done(AcOutcome),
}

/// One process's proposal to one round's adopt-commit object, as a
/// resumable sub-machine (3–4 operations).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AdoptCommit {
    layout: BackupLayout,
    round: usize,
    proposal: Bit,
    phase: Phase,
}

impl AdoptCommit {
    /// Starts a proposal of `proposal` to round `round`'s object.
    pub fn new(layout: BackupLayout, round: usize, proposal: Bit) -> Self {
        AdoptCommit {
            layout,
            round,
            proposal,
            phase: Phase::WritePresent,
        }
    }

    /// The machine's pending operation or outcome.
    pub fn status(&self) -> SubStatus<AcOutcome> {
        let v = self.proposal;
        let rival = v.rival();
        match self.phase {
            Phase::WritePresent => {
                SubStatus::Pending(Op::Write(self.layout.present(self.round, v), 1))
            }
            Phase::ReadRivalPresent | Phase::RecheckRivalPresent => {
                SubStatus::Pending(Op::Read(self.layout.present(self.round, rival)))
            }
            Phase::WriteCommitted => {
                SubStatus::Pending(Op::Write(self.layout.committed(self.round, v), 1))
            }
            Phase::ReadRivalCommitted => {
                SubStatus::Pending(Op::Read(self.layout.committed(self.round, rival)))
            }
            Phase::Done(outcome) => SubStatus::Done(outcome),
        }
    }

    /// Delivers the pending operation's result.
    ///
    /// # Panics
    ///
    /// Panics if the machine is already done or the result shape doesn't
    /// match the pending operation.
    pub fn advance(&mut self, read_value: Option<Word>) {
        let v = self.proposal;
        match self.phase {
            Phase::WritePresent => {
                assert!(read_value.is_none(), "write takes no result");
                self.phase = Phase::ReadRivalPresent;
            }
            Phase::ReadRivalPresent => {
                let rival_present = read_value.expect("read needs a value") != 0;
                self.phase = if rival_present {
                    Phase::ReadRivalCommitted
                } else {
                    Phase::WriteCommitted
                };
            }
            Phase::WriteCommitted => {
                assert!(read_value.is_none(), "write takes no result");
                self.phase = Phase::RecheckRivalPresent;
            }
            Phase::RecheckRivalPresent => {
                let rival_present = read_value.expect("read needs a value") != 0;
                self.phase = Phase::Done(if rival_present {
                    AcOutcome::Adopt(v)
                } else {
                    AcOutcome::Commit(v)
                });
            }
            Phase::ReadRivalCommitted => {
                let rival_committed = read_value.expect("read needs a value") != 0;
                self.phase = Phase::Done(if rival_committed {
                    AcOutcome::Adopt(v.rival())
                } else {
                    AcOutcome::Adopt(v)
                });
            }
            Phase::Done(_) => panic!("advance called on a finished adopt-commit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_memory::SimMemory;
    use proptest::prelude::*;

    fn setup(n: usize) -> (SimMemory, BackupLayout) {
        let mut mem = SimMemory::new();
        let region = mem.alloc(BackupLayout::words_needed(n, 4));
        (mem, BackupLayout::new(region, n, 4))
    }

    fn drive(ac: &mut AdoptCommit, mem: &mut SimMemory) -> AcOutcome {
        loop {
            match ac.status() {
                SubStatus::Done(o) => return o,
                SubStatus::Pending(op) => ac.advance(mem.exec(op)),
            }
        }
    }

    /// Drives a set of proposals under an arbitrary interleaving given by
    /// `schedule` (indices into the set, reused round-robin as fallback),
    /// returning all outcomes.
    fn drive_interleaved(
        mut acs: Vec<AdoptCommit>,
        mem: &mut SimMemory,
        schedule: &[usize],
    ) -> Vec<AcOutcome> {
        let mut cursor = 0usize;
        loop {
            let pending: Vec<usize> = (0..acs.len())
                .filter(|&i| matches!(acs[i].status(), SubStatus::Pending(_)))
                .collect();
            if pending.is_empty() {
                return acs.iter().map(|a| a.status().outcome().unwrap()).collect();
            }
            let raw = schedule.get(cursor).copied().unwrap_or(cursor);
            cursor += 1;
            let pick = pending[raw % pending.len()];
            let SubStatus::Pending(op) = acs[pick].status() else {
                unreachable!()
            };
            let res = mem.exec(op);
            acs[pick].advance(res);
        }
    }

    #[test]
    fn solo_proposal_commits() {
        for v in Bit::BOTH {
            let (mut mem, layout) = setup(2);
            let mut ac = AdoptCommit::new(layout, 1, v);
            assert_eq!(drive(&mut ac, &mut mem), AcOutcome::Commit(v));
        }
    }

    #[test]
    fn unanimous_sequential_proposals_all_commit() {
        let (mut mem, layout) = setup(3);
        for _ in 0..3 {
            let mut ac = AdoptCommit::new(layout, 1, Bit::One);
            assert_eq!(drive(&mut ac, &mut mem), AcOutcome::Commit(Bit::One));
        }
    }

    #[test]
    fn late_rival_adopts_the_committed_value() {
        let (mut mem, layout) = setup(2);
        let mut first = AdoptCommit::new(layout, 1, Bit::Zero);
        assert_eq!(drive(&mut first, &mut mem), AcOutcome::Commit(Bit::Zero));
        let mut rival = AdoptCommit::new(layout, 1, Bit::One);
        assert_eq!(drive(&mut rival, &mut mem), AcOutcome::Adopt(Bit::Zero));
    }

    #[test]
    fn distinct_rounds_are_independent() {
        let (mut mem, layout) = setup(2);
        let mut a = AdoptCommit::new(layout, 1, Bit::Zero);
        let mut b = AdoptCommit::new(layout, 2, Bit::One);
        assert_eq!(drive(&mut a, &mut mem), AcOutcome::Commit(Bit::Zero));
        assert_eq!(drive(&mut b, &mut mem), AcOutcome::Commit(Bit::One));
    }

    #[test]
    fn lockstep_rivals_both_adopt_without_commit() {
        // Interleave two rival proposals one op at a time: both write
        // present before either reads — nobody may commit.
        let (mut mem, layout) = setup(2);
        let acs = vec![
            AdoptCommit::new(layout, 1, Bit::Zero),
            AdoptCommit::new(layout, 1, Bit::One),
        ];
        let outcomes = drive_interleaved(acs, &mut mem, &[0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(outcomes.iter().all(|o| !o.is_commit()), "{outcomes:?}");
    }

    #[test]
    fn outcome_accessors() {
        assert_eq!(AcOutcome::Commit(Bit::One).value(), Bit::One);
        assert_eq!(AcOutcome::Adopt(Bit::Zero).value(), Bit::Zero);
        assert!(AcOutcome::Commit(Bit::Zero).is_commit());
        assert!(!AcOutcome::Adopt(Bit::Zero).is_commit());
        assert_eq!(AcOutcome::Commit(Bit::One).to_string(), "commit 1");
        assert_eq!(AcOutcome::Adopt(Bit::Zero).to_string(), "adopt 0");
    }

    #[test]
    #[should_panic(expected = "finished adopt-commit")]
    fn advance_after_done_panics() {
        let (mut mem, layout) = setup(1);
        let mut ac = AdoptCommit::new(layout, 1, Bit::Zero);
        drive(&mut ac, &mut mem);
        ac.advance(None);
    }

    proptest! {
        /// Coherence under arbitrary interleavings: if anyone commits v,
        /// every outcome's value is v; and validity: values were proposed.
        #[test]
        fn coherence_and_validity_under_any_schedule(
            proposals in proptest::collection::vec(any::<bool>(), 1..6),
            schedule in proptest::collection::vec(0usize..8, 0..64),
        ) {
            let (mut mem, layout) = setup(proposals.len());
            let acs: Vec<AdoptCommit> = proposals
                .iter()
                .map(|&b| AdoptCommit::new(layout, 1, Bit::from(b)))
                .collect();
            let outcomes = drive_interleaved(acs, &mut mem, &schedule);

            // Validity.
            for o in &outcomes {
                prop_assert!(proposals.contains(&bool::from(o.value())));
            }
            // Coherence.
            let committed: Vec<Bit> = outcomes
                .iter()
                .filter(|o| o.is_commit())
                .map(|o| o.value())
                .collect();
            if let Some(&v) = committed.first() {
                prop_assert!(committed.iter().all(|&c| c == v), "two rival commits");
                prop_assert!(
                    outcomes.iter().all(|o| o.value() == v),
                    "commit of {v} but outcomes {outcomes:?}"
                );
            }
            // Convergence.
            if proposals.iter().all(|&b| b == proposals[0]) {
                prop_assert!(outcomes.iter().all(|o| o.is_commit()));
            }
        }
    }
}
