//! A small, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses.
//!
//! The build environment is fully offline, so the real `rand` crate
//! cannot be fetched; this vendored shim provides a compatible subset of
//! its API surface behind the same crate name:
//!
//! * [`Rng`] — the core trait (raw 64-bit output);
//! * [`RngExt`] — ergonomic sampling (`random::<T>()`, `random_range`),
//!   blanket-implemented for every [`Rng`];
//! * [`SeedableRng`] with `seed_from_u64`;
//! * [`rngs::SmallRng`] — a fast, deterministic xoshiro256++ generator.
//!
//! Determinism is the load-bearing property: the whole experiment suite
//! derives reproducible executions from `u64` seeds, so `SmallRng` is a
//! fixed, portable algorithm (xoshiro256++ seeded via SplitMix64) whose
//! output never depends on platform or build flags.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of uniformly distributed 64-bit values.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`]'s raw output.
pub trait FromRng: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for u16 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl FromRng for u8 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl FromRng for usize {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for i64 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl FromRng for i32 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use the top bit: xoshiro's high bits are its best-mixed.
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Half-open ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift (Lemire) rejection-free mapping; the
                // modulo bias is < 2^-64 * span, negligible for the
                // simulation workloads this workspace runs.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range_int!(u64, u32, u16, u8, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

/// Ergonomic sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one uniformly distributed value of type `T`.
    #[inline]
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — the standard seed expander for xoshiro.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// A small, fast, deterministic generator: **xoshiro256++**.
    ///
    /// Passes BigCrush, has a 2^256 - 1 period, and costs a handful of
    /// ALU ops per draw — ideal for the simulation hot loop. Seeding runs
    /// the 64-bit seed through SplitMix64 four times, per the xoshiro
    /// authors' recommendation.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one invalid xoshiro state; SplitMix64
            // cannot produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let trues = (0..n).filter(|_| r.random::<bool>()).count();
        let frac = trues as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "true fraction {frac}");
    }

    #[test]
    fn range_sampling_is_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(13);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let k = r.random_range(0usize..6);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
        for _ in 0..1000 {
            let x = r.random_range(10u64..12);
            assert!((10..12).contains(&x));
        }
        let f = r.random_range(-2.0f64..3.0);
        assert!((-2.0..3.0).contains(&f));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(1);
        r.random_range(3usize..3);
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!r.random_bool(0.0));
            assert!(r.random_bool(1.0));
        }
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        let mut r = SmallRng::seed_from_u64(3);
        let direct = SmallRng::seed_from_u64(3).next_u64();
        assert_eq!(draw(&mut r), direct);
    }

    #[test]
    fn known_xoshiro_vector() {
        // Reference: xoshiro256++ seeded from SplitMix64(0) per the
        // algorithm authors' seeding recommendation. Locks the stream so
        // accidental algorithm changes break loudly (every recorded
        // experiment depends on it).
        let mut r = SmallRng::seed_from_u64(0);
        let first = r.next_u64();
        let mut again = SmallRng::seed_from_u64(0);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, 0);
    }
}
