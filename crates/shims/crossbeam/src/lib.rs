//! A minimal stand-in for `crossbeam::scope`, implemented over
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! The build environment is offline, so the real `crossbeam` cannot be
//! fetched. Only the scoped-thread API surface this workspace uses is
//! provided: `crossbeam::scope(|s| { s.spawn(|_| ...) })` returning a
//! `Result` whose `Ok` is the closure's return value.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Result type of [`scope`], matching crossbeam's shape (`Err` carries a
/// child-thread panic payload; this shim propagates panics via std's
/// scope instead, so `Err` never actually occurs).
pub type ScopeResult<T> = std::thread::Result<T>;

/// A scope handle for spawning threads that may borrow from the caller.
///
/// `Copy`, so it can be captured by `move` closures and re-used, exactly
/// like crossbeam's `&Scope`.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again (for
    /// nested spawning), mirroring crossbeam's signature — call sites
    /// that don't nest simply ignore it with `|_|`.
    pub fn spawn<F, T>(self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(self))
    }
}

/// Creates a scope for spawning borrowing threads; all spawned threads
/// are joined before this returns.
///
/// # Errors
///
/// Never returns `Err` in this shim (kept for call-site compatibility
/// with crossbeam, whose scope reports child panics as `Err`). A panic
/// in an unjoined child thread propagates as a panic instead.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_the_scope_arg() {
        let out = super::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u64);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
