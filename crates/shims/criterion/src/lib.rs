//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment is offline, so the real `criterion` cannot be
//! fetched. This shim keeps the same call-site API (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`) and implements a compact
//! measurement loop:
//!
//! 1. warm up for ~`warm_up_time` while auto-calibrating the per-sample
//!    iteration count to a target sample duration;
//! 2. collect `sample_size` samples;
//! 3. report min / median / mean time per iteration on stdout.
//!
//! Results are also appended to the file named by the
//! `CRITERION_SHIM_JSON` environment variable (one JSON object per line)
//! so harness scripts can consume machine-readable numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and result sink.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    target_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            warm_up: Duration::from_millis(300),
            target_sample: Duration::from_millis(15),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Applies command-line/environment configuration. This shim reads
    /// `CRITERION_SHIM_SAMPLES` (sample count override) and ignores the
    /// real crate's CLI flags.
    pub fn configure_from_args(mut self) -> Self {
        if let Ok(v) = std::env::var("CRITERION_SHIM_SAMPLES") {
            if let Ok(n) = v.parse::<usize>() {
                self.sample_size = n.max(2);
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_bench(self, None, &mut f);
        report(name, &stats, None);
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId2>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let stats = run_bench(self.criterion, self.sample_size, &mut f);
        report(&full, &stats, self.throughput);
        self
    }

    /// Benchmarks `f` with an input value under `id` within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let mut g = |b: &mut Bencher| f(b, input);
        let stats = run_bench(self.criterion, self.sample_size, &mut g);
        report(&full, &stats, self.throughput);
        self
    }

    /// Finishes the group (reporting happens eagerly; this is a no-op
    /// kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Either a `&str` or a [`BenchmarkId`] (what `bench_function` accepts).
#[derive(Debug)]
pub struct BenchmarkId2 {
    id: String,
}

impl From<&str> for BenchmarkId2 {
    fn from(s: &str) -> Self {
        BenchmarkId2 { id: s.into() }
    }
}

impl From<String> for BenchmarkId2 {
    fn from(s: String) -> Self {
        BenchmarkId2 { id: s }
    }
}

impl From<BenchmarkId> for BenchmarkId2 {
    fn from(b: BenchmarkId) -> Self {
        BenchmarkId2 { id: b.id }
    }
}

/// Drives the measured routine.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Measured duration of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Iterations per sample used.
    pub iters_per_sample: u64,
    /// Number of samples.
    pub samples: usize,
}

fn run_bench<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    sample_size: Option<usize>,
    f: &mut F,
) -> Stats {
    let sample_size = sample_size.unwrap_or(criterion.sample_size);
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Warm-up: run while calibrating iters so one sample takes roughly
    // target_sample.
    let warm_start = Instant::now();
    loop {
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        if per_iter > 0.0 {
            let target = criterion.target_sample.as_secs_f64();
            let ideal = (target / per_iter).clamp(1.0, 1e9);
            // Move at most 10x per step to damp noisy first measurements.
            b.iters = ((b.iters as f64 * 10.0).min(ideal).max(1.0)) as u64;
        }
        if warm_start.elapsed() >= criterion.warm_up {
            break;
        }
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_secs_f64() * 1e9 / b.iters as f64);
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let min_ns = per_iter_ns[0];
    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    Stats {
        min_ns,
        median_ns,
        mean_ns,
        iters_per_sample: b.iters,
        samples: per_iter_ns.len(),
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn report(name: &str, stats: &Stats, throughput: Option<Throughput>) {
    let mut line = format!(
        "{name:<40} time: [{} {} {}]",
        human(stats.min_ns),
        human(stats.median_ns),
        human(stats.mean_ns)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / (stats.median_ns / 1e9);
        line.push_str(&format!("  thrpt: {rate:.3e} {unit}"));
    }
    println!("{line}");

    if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"name\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{},\"iters_per_sample\":{},\"samples\":{}}}",
                name.replace('"', "'"),
                stats.min_ns,
                stats.median_ns,
                stats.mean_ns,
                stats.iters_per_sample,
                stats.samples
            );
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports_sane_stats() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5));
        // Private API check through the public entry points.
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("shim_test");
            group.sample_size(5);
            group.bench_function("noop", |b| {
                b.iter(|| {
                    calls += 1;
                    black_box(calls)
                })
            });
            group.finish();
        }
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn human_units() {
        assert!(human(12.3).contains("ns"));
        assert!(human(12_300.0).contains("µs"));
        assert!(human(12_300_000.0).contains("ms"));
        assert!(human(2e9).ends_with('s'));
    }
}
