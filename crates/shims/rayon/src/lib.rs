//! A small, std-thread stand-in for the parts of the `rayon` crate this
//! workspace uses.
//!
//! The build environment is fully offline, so the real `rayon` cannot be
//! fetched. This shim provides the same names for the subset the
//! experiment harness needs — `into_par_iter().map(f).collect()` plus a
//! global thread-count knob — implemented with `std::thread::scope`.
//!
//! Semantics guaranteed (and relied on by the determinism tests):
//!
//! * `collect()` preserves input order exactly, so a parallel map is
//!   **bit-for-bit identical** to its serial equivalent whenever the
//!   mapped function is a pure function of its item.
//! * Work is split into one contiguous chunk per worker; with one thread
//!   the map degenerates to a plain serial loop (no thread spawn).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-count override: 0 = use available parallelism.
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The number of worker threads parallel iterators will use.
pub fn current_num_threads() -> usize {
    let configured = NUM_THREADS.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error returned by [`ThreadPoolBuilder::build_global`] (never actually
/// produced by this shim; kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global worker count, mirroring rayon's builder API.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally. Unlike real rayon this may be
    /// called repeatedly; the latest call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        NUM_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Parallel iterator traits and adapters.
pub mod iter {
    use super::current_num_threads;

    /// Conversion into a (materialized) parallel iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Materializes the elements for parallel consumption.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    macro_rules! impl_into_par_range {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                fn into_par_iter(self) -> ParIter<$t> {
                    ParIter { items: self.collect() }
                }
            }
        )*};
    }

    impl_into_par_range!(u64, u32, usize);

    /// A materialized parallel iterator (this shim is eager: items are
    /// collected up front, then mapped in ordered contiguous chunks).
    #[derive(Debug)]
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Maps each element through `f` in parallel.
        pub fn map<U, F>(self, f: F) -> ParMap<T, F>
        where
            U: Send,
            F: Fn(T) -> U + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Consumes the iterator, yielding the items in order (used by
        /// tests and as an escape hatch).
        pub fn into_vec(self) -> Vec<T> {
            self.items
        }
    }

    /// The result of [`ParIter::map`]: a pending ordered parallel map.
    #[derive(Debug)]
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, F> ParMap<T, F> {
        /// Runs the map across the configured worker count and collects
        /// results **in input order**.
        pub fn collect<C>(self) -> C
        where
            T: Send,
            F: Sync,
            C: FromIterator<<F as MapFn<T>>::Output>,
            F: MapFn<T>,
            <F as MapFn<T>>::Output: Send,
        {
            run_ordered(self.items, &self.f).into_iter().collect()
        }
    }

    /// Object-safe-ish view of `Fn(T) -> U` that lets `collect` name the
    /// output type without an extra type parameter at the call site.
    pub trait MapFn<T> {
        /// The mapped output type.
        type Output;
        /// Applies the function.
        fn call(&self, item: T) -> Self::Output;
    }

    impl<T, U, F: Fn(T) -> U> MapFn<T> for F {
        type Output = U;
        fn call(&self, item: T) -> U {
            (*self)(item)
        }
    }

    /// Maps `items` through `f` preserving order; chunked across workers.
    fn run_ordered<T, F>(items: Vec<T>, f: &F) -> Vec<<F as MapFn<T>>::Output>
    where
        T: Send,
        F: MapFn<T> + Sync,
        <F as MapFn<T>>::Output: Send,
    {
        let n = items.len();
        let workers = current_num_threads().max(1).min(n.max(1));
        if workers <= 1 || n <= 1 {
            return items.into_iter().map(|it| f.call(it)).collect();
        }
        let chunk = n.div_ceil(workers);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        let mut items = items;
        // Split back-to-front so each split_off is O(chunk).
        let mut bounds: Vec<usize> = (1..workers).map(|w| w * chunk).filter(|&b| b < n).collect();
        bounds.reverse();
        let mut tails: Vec<Vec<T>> = Vec::new();
        for b in bounds {
            tails.push(items.split_off(b));
        }
        chunks.push(items);
        tails.reverse();
        chunks.extend(tails);

        let mut out: Vec<Vec<<F as MapFn<T>>::Output>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| s.spawn(move || c.into_iter().map(|it| f.call(it)).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("parallel map worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }
}

/// The usual rayon prelude: traits needed for `into_par_iter().map(..)`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ordered_map_matches_serial() {
        let serial: Vec<u64> = (0..1000u64).map(|x| x * x).collect();
        let parallel: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * x).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn vec_source_preserves_order() {
        let v: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let out: Vec<String> = v.clone().into_par_iter().map(|s| format!("{s}!")).collect();
        assert_eq!(out, vec!["a!", "b!", "c!"]);
    }

    #[test]
    fn single_thread_config_still_completes() {
        ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .unwrap();
        let out: Vec<u64> = (0..64u64).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..65u64).collect::<Vec<_>>());
        // Restore default for other tests in this binary.
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
