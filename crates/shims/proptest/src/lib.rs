//! A minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment is offline, so the real `proptest` cannot be
//! fetched. This shim keeps the same call-site syntax for the subset the
//! test suites use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * [`Strategy`] implementations for numeric ranges, `any::<T>()`,
//!   tuples, and [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from real proptest, by design: cases are generated from a
//! **deterministic** per-test seed (derived from the test's module path
//! and name), and failing cases are **not shrunk** — the panic message
//! includes the case index so a failure is still reproducible by
//! construction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Number of cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many generated cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while
        // still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value generated.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.random::<u64>() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = ((rng.random::<u64>() as u128 * span) >> 64) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Occasionally produce the exact endpoints: boundary values are
        // where properties break.
        match rng.random_range(0u32..32) {
            0 => lo,
            1 => hi,
            _ => lo + (hi - lo) * rng.random::<f64>(),
        }
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform strategy over all values of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random::<$t>()
            }
        }
    )*};
}

impl_any!(bool, u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.start..self.len.end)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// FNV-1a hash of the test identifier, for per-test seed derivation.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds the deterministic RNG for case `case` of the test named
/// `test_id`. Used by the [`proptest!`] expansion; not part of the real
/// proptest API.
pub fn test_rng(test_id: &str, case: u32) -> SmallRng {
    SmallRng::seed_from_u64(fnv1a(test_id) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Asserts a property within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Declares property tests. Mirrors the real macro's syntax for the
/// subset used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// The usual glob import target.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("bounds", 0);
        for _ in 0..1000 {
            let x = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let y = (-5.0f64..5.0).generate(&mut rng);
            assert!((-5.0..5.0).contains(&y));
            let z = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::test_rng("vec", 0);
        for _ in 0..200 {
            let v = collection::vec(any::<bool>(), 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = crate::test_rng("tuple", 0);
        let (a, b, c) = (0usize..8, any::<bool>(), 0u64..16).generate(&mut rng);
        assert!(a < 8);
        let _: bool = b;
        assert!(c < 16);
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let mut a = crate::test_rng("x", 1);
        let mut b = crate::test_rng("x", 1);
        assert_eq!((0u64..100).generate(&mut a), (0u64..100).generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end-to-end.
        #[test]
        fn macro_generates_inputs(
            xs in collection::vec(0usize..10, 1..5),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_uses_default(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }
}
