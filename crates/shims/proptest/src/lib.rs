//! A minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment is offline, so the real `proptest` cannot be
//! fetched. This shim keeps the same call-site syntax for the subset the
//! test suites use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * [`Strategy`] implementations for numeric ranges, `any::<T>()`,
//!   tuples, and [`collection::vec`], plus [`Just`],
//!   [`Strategy::prop_map`], and the unweighted [`prop_oneof!`];
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * **bounded shrinking**: when a case fails, the runner retries with
//!   smaller inputs — vectors truncated to their minimum length, half,
//!   and all-but-last; numbers halved toward their range's start; tuple
//!   components shrunk one at a time — adopting any candidate that
//!   still fails, up to [`MAX_SHRINK_STEPS`] steps. The final panic
//!   reports the failing case index plus the minimized counterexample,
//!   so schedule-shaped failures (`Vec<usize>` scripts) come back
//!   short.
//!
//! Differences from real proptest, by design: cases are generated from a
//! **deterministic** per-test seed (derived from the test's module path
//! and name), shrinking is truncation/halving only (no per-element
//! exploration, no persistence file), and intermediate failing shrink
//! attempts print their panic messages (the default hook is left alone
//! because tests run concurrently).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Number of cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many generated cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while
        // still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Upper bound on adopted shrink steps per failing case: enough to
/// halve any generated vector down to its minimum length several times
/// over, small enough that a flaky environment can't loop for long.
pub const MAX_SHRINK_STEPS: u32 = 64;

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value generated. `Clone` lets the shrinker re-run
    /// the property body on candidates; `Debug` lets the final panic
    /// print the minimized counterexample.
    type Value: Clone + std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. Candidates must stay inside the strategy's own value
    /// space (a shrunk vector never goes below its minimum length, a
    /// shrunk number never leaves its range). The default — no
    /// candidates — means "atomic, don't shrink".
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f` (real proptest's
    /// `Strategy::prop_map`). Mapped strategies don't shrink — the shim
    /// has no value-to-source inverse — so failures report the mapped
    /// counterexample as generated.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Clone + std::fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always produces the same value (real proptest's
/// `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies of one value type — the shape
/// behind [`prop_oneof!`]. Unweighted (the workspace doesn't use the
/// real macro's `weight => strategy` arms). Atomic under shrinking: a
/// failing value can't be attributed back to the option that produced
/// it.
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: Clone + std::fmt::Debug> OneOf<V> {
    /// Builds a choice over `options` (non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V: Clone + std::fmt::Debug> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        let k = rng.random_range(0..self.options.len());
        self.options[k].generate(rng)
    }
}

/// Boxes a strategy for [`OneOf`], unifying option types. Used by the
/// [`prop_oneof!`] expansion; not part of the real proptest API.
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Picks uniformly among the given strategies (real proptest's macro,
/// minus per-arm weights).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::OneOf::new(vec![ $( $crate::boxed_strategy($s) ),+ ])
    };
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.random::<u64>() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = ((rng.random::<u64>() as u128 * span) >> 64) as i128;
                (lo as i128 + r) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_strategy_int_range!(usize, u64, u32, u16, u8, i64, i32);

/// Integer shrink candidates: the range's start, then the midpoint
/// between start and the failing value (skipping no-ops).
fn shrink_toward(start: i128, value: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if value != start {
        out.push(start);
        let mid = start + (value - start) / 2;
        if mid != start && mid != value {
            out.push(mid);
        }
    }
    out
}

/// Float shrink candidates: the anchor, then the midpoint toward it.
fn shrink_toward_f64(anchor: f64, value: f64) -> Vec<f64> {
    let mut out = Vec::new();
    if value != anchor && value.is_finite() {
        out.push(anchor);
        let mid = anchor + (value - anchor) / 2.0;
        if mid != anchor && mid != value {
            out.push(mid);
        }
    }
    out
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_toward_f64(self.start, *value)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Occasionally produce the exact endpoints: boundary values are
        // where properties break.
        match rng.random_range(0u32..32) {
            0 => lo,
            1 => hi,
            _ => lo + (hi - lo) * rng.random::<f64>(),
        }
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_toward_f64(*self.start(), *value)
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform strategy over all values of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random::<$t>()
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(0, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.random::<bool>()
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.random::<f64>()
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_toward_f64(0.0, *value)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.start..self.len.end)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }

        /// Bounded vector shrinking: prefixes at the minimum length,
        /// half the current length, and length − 1 (in that order,
        /// skipping out-of-range and no-op candidates). Repeated
        /// adoption by the runner walks a failing schedule down to a
        /// short prefix in O(log len) steps.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.len.start;
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            for k in [min, value.len() / 2, value.len().saturating_sub(1)] {
                if k >= min && k < value.len() && !out.iter().any(|c| c.len() == k) {
                    out.push(value[..k].to_vec());
                }
            }
            out
        }
    }
}

/// FNV-1a hash of the test identifier, for per-test seed derivation.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds the deterministic RNG for case `case` of the test named
/// `test_id`. Used by the [`proptest!`] expansion; not part of the real
/// proptest API.
pub fn test_rng(test_id: &str, case: u32) -> SmallRng {
    SmallRng::seed_from_u64(fnv1a(test_id) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Greedy bounded shrink: repeatedly adopt the first candidate that
/// still fails (`passes` returns `false`), up to [`MAX_SHRINK_STEPS`]
/// adoptions. Returns the minimized failing value and how many steps
/// were taken. Used by [`run_property`].
pub fn shrink_failure<S: Strategy>(
    strategy: &S,
    mut failing: S::Value,
    mut passes: impl FnMut(&S::Value) -> bool,
) -> (S::Value, u32) {
    let mut steps = 0u32;
    'outer: while steps < MAX_SHRINK_STEPS {
        for cand in strategy.shrink(&failing) {
            if !passes(&cand) {
                failing = cand;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (failing, steps)
}

/// The property runner behind the [`proptest!`] macro: generates
/// `config.cases` deterministic cases from `strategy`, runs `body` on
/// each, and on the first failure shrinks it ([`shrink_failure`])
/// before panicking with the case index and minimized counterexample.
///
/// Failing attempts (the original and each failing shrink candidate)
/// print their panic message through the default hook; only the final
/// panic carries the minimized report.
pub fn run_property<S: Strategy>(
    strategy: &S,
    config: ProptestConfig,
    test_id: &str,
    body: impl Fn(S::Value),
) {
    let passes = |vals: &S::Value| -> bool {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(vals.clone()))).is_ok()
    };
    for case in 0..config.cases {
        let mut rng = test_rng(test_id, case);
        let vals = strategy.generate(&mut rng);
        if !passes(&vals) {
            let (min, steps) = shrink_failure(strategy, vals, &passes);
            panic!(
                "property `{test_id}` failed at case {case} of {}; minimal counterexample \
                 ({steps} shrink step(s)): {min:#?}",
                config.cases,
            );
        }
    }
}

/// Asserts a property within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(
                    &($(($strat),)+),
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
}

/// Declares property tests. Mirrors the real macro's syntax for the
/// subset used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// The usual glob import target.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("bounds", 0);
        for _ in 0..1000 {
            let x = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let y = (-5.0f64..5.0).generate(&mut rng);
            assert!((-5.0..5.0).contains(&y));
            let z = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::test_rng("vec", 0);
        for _ in 0..200 {
            let v = collection::vec(any::<bool>(), 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = crate::test_rng("tuple", 0);
        let (a, b, c) = (0usize..8, any::<bool>(), 0u64..16).generate(&mut rng);
        assert!(a < 8);
        let _: bool = b;
        assert!(c < 16);
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let mut a = crate::test_rng("x", 1);
        let mut b = crate::test_rng("x", 1);
        assert_eq!((0u64..100).generate(&mut a), (0u64..100).generate(&mut b));
    }

    #[test]
    fn int_shrink_moves_toward_range_start() {
        let cands = Strategy::shrink(&(3usize..100), &90);
        assert_eq!(cands, vec![3, 46]);
        // Already minimal: nothing to try.
        assert!(Strategy::shrink(&(3usize..100), &3).is_empty());
        // any::<T>() shrinks toward zero.
        assert_eq!(Strategy::shrink(&any::<u64>(), &8), vec![0, 4]);
        assert_eq!(Strategy::shrink(&any::<bool>(), &true), vec![false]);
        assert!(Strategy::shrink(&any::<bool>(), &false).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_len_and_truncates() {
        let strat = collection::vec(0usize..10, 2..20);
        let v: Vec<usize> = (0..12).collect();
        let cands = Strategy::shrink(&strat, &v);
        // min-length prefix, half, all-but-last — in that order.
        assert_eq!(
            cands.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![2, 6, 11]
        );
        for c in &cands {
            assert_eq!(&v[..c.len()], c.as_slice(), "candidates are prefixes");
        }
        // At the minimum length there is nothing left to try.
        assert!(Strategy::shrink(&strat, &v[..2].to_vec()).is_empty());
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let strat = (0u64..50, any::<bool>());
        let cands = Strategy::shrink(&strat, &(40, true));
        assert!(cands.contains(&(0, true)));
        assert!(cands.contains(&(20, true)));
        assert!(cands.contains(&(40, false)));
        // Never both at once.
        assert!(!cands.contains(&(0, false)));
    }

    #[test]
    fn shrink_failure_minimizes_a_failing_schedule() {
        // Property: "no element is >= 7". A long failing vector must
        // minimize down to a short prefix that still contains the bad
        // element.
        let strat = collection::vec(0usize..10, 0..64);
        let failing = vec![7, 1, 2, 3, 4, 5, 6, 1, 2, 3];
        let (min, steps) =
            crate::shrink_failure(&strat, failing, |v: &Vec<usize>| v.iter().all(|&x| x < 7));
        assert_eq!(min, vec![7], "minimal counterexample is the one bad prefix");
        assert!((1..=crate::MAX_SHRINK_STEPS).contains(&steps));
    }

    #[test]
    fn shrink_failure_is_bounded() {
        // A property that always fails cannot loop forever.
        let strat = collection::vec(0usize..10, 0..64);
        let failing: Vec<usize> = (0..60).collect();
        let (min, steps) = crate::shrink_failure(&strat, failing, |_: &Vec<usize>| false);
        assert!(steps <= crate::MAX_SHRINK_STEPS);
        assert!(min.is_empty(), "always-failing vec shrinks to its min len");
    }

    #[test]
    fn just_map_and_oneof_compose() {
        let mut rng = crate::test_rng("oneof", 0);
        let strat = prop_oneof![
            Just(0u64),
            (1u64..5).prop_map(|x| x * 100),
            (5u64..10).prop_map(|x| x * 1000),
        ];
        let mut saw_just = false;
        let mut saw_map = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                0 => saw_just = true,
                v if (100..500).contains(&v) && v % 100 == 0 => saw_map = true,
                v if (5000..10_000).contains(&v) && v % 1000 == 0 => {}
                v => panic!("value {v} outside every option's range"),
            }
        }
        assert!(saw_just && saw_map, "uniform choice missed an option");
        // Mapped and oneof strategies are atomic under shrinking.
        assert!(Strategy::shrink(&strat, &200).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end-to-end.
        #[test]
        fn macro_generates_inputs(
            xs in collection::vec(0usize..10, 1..5),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_uses_default(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    /// The macro's failure path (generate → detect → shrink → report)
    /// end-to-end, without an actually failing #[test]: expand a
    /// property fn by hand, run it caught, inspect the panic payload.
    #[test]
    fn macro_failure_reports_minimized_counterexample() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            fn failing_property(xs in collection::vec(0usize..100, 0..40)) {
                prop_assert!(xs.iter().all(|&x| x < 90), "saw a big element");
            }
        }
        let err = std::panic::catch_unwind(failing_property)
            .expect_err("property with reachable failure must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(
            msg.contains("failed at case") && msg.contains("minimal counterexample"),
            "unexpected failure report: {msg}"
        );
        // The minimized vector is printed with one element per line in
        // {:#?}; a single remaining element means real minimization
        // happened (the generated vectors are up to 40 long).
        assert!(
            msg.contains("shrink step"),
            "report should mention shrink steps: {msg}"
        );
    }
}
